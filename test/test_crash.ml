(* Crash–restart tolerance tests: the incarnation-epoch resync handshake
   recovers from sender, receiver and double crashes; the epoch-less
   ("naive") restart demonstrably violates at-most-once delivery; the
   chaos campaign's [crash] fault class stays clean across the seed grid
   and its replay keys reproduce failures exactly. *)

let check = Alcotest.check

module Harness = Ba_proto.Harness
module Crash_plan = Ba_proto.Crash_plan
module Config = Blockack.Config
module Dist = Ba_channel.Dist
module Chaos = Ba_verify.Chaos

let config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ()
let naive_config = Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~resync_epochs:false ()

let run ?(seed = 1) ?(messages = 300) ?(config = config) ?(loss = 0.) ~crash_plan proto =
  Harness.run proto ~seed ~messages ~config ~data_loss:loss ~ack_loss:loss
    ~data_delay:(Dist.Uniform (20, 80))
    ~ack_delay:(Dist.Uniform (20, 80))
    ~crash_plan ()

let assert_correct name (r : Harness.result) =
  if not (Harness.correct r) then
    Alcotest.failf "%s: incorrect run: completed=%b dup=%d ooo=%d bad=%d delivered=%d/%d" name
      r.completed r.duplicates r.misordered r.corrupted r.delivered r.messages

(* ------------------------------------------------------------------ *)
(* Harness-level crash plans *)

let sender_crash = Crash_plan.make [ { at = 500; endpoint = Sender_end; down_for = 400 } ]
let receiver_crash = Crash_plan.make [ { at = 500; endpoint = Receiver_end; down_for = 400 } ]

let both_crash =
  Crash_plan.make
    [
      { at = 400; endpoint = Receiver_end; down_for = 300 };
      { at = 1200; endpoint = Sender_end; down_for = 300 };
    ]

let test_sender_crash_recovers () =
  List.iter
    (fun seed ->
      let r = run ~seed ~crash_plan:sender_crash Blockack.Protocols.multi in
      assert_correct "sender crash" r;
      check Alcotest.int "crashes" 1 r.Harness.crashes;
      check Alcotest.int "restarts" 1 r.Harness.restarts;
      if r.Harness.resync_rounds < 2 then
        Alcotest.failf "expected a REQ/POS/FIN exchange, rounds=%d" r.Harness.resync_rounds;
      match r.Harness.resync_ticks with
      | None -> Alcotest.fail "expected a recovery-time sample"
      | Some s -> if s.Ba_util.Stats.mean <= 0. then Alcotest.fail "recovery time must be positive")
    [ 1; 2; 3; 4; 5 ]

let test_receiver_crash_recovers () =
  List.iter
    (fun seed ->
      let r = run ~seed ~crash_plan:receiver_crash Blockack.Protocols.multi in
      assert_correct "receiver crash" r;
      check Alcotest.int "restarts" 1 r.Harness.restarts;
      if r.Harness.resync_rounds < 1 then Alcotest.fail "receiver restart must announce via POS")
    [ 1; 2; 3; 4; 5 ]

let test_double_crash_recovers () =
  List.iter
    (fun seed ->
      let r = run ~seed ~messages:400 ~crash_plan:both_crash Blockack.Protocols.multi in
      assert_correct "double crash" r;
      check Alcotest.int "crashes" 2 r.Harness.crashes;
      check Alcotest.int "restarts" 2 r.Harness.restarts)
    [ 1; 2; 3 ]

let test_crash_under_loss () =
  (* The handshake itself rides the lossy links: REQ/POS/FIN frames can be
     dropped and must be retried on the resync timer. *)
  List.iter
    (fun seed ->
      let r = run ~seed ~loss:0.2 ~crash_plan:both_crash Blockack.Protocols.multi in
      assert_correct "double crash under loss" r)
    [ 1; 2; 3; 4; 5 ]

let test_simple_sender_crash_recovers () =
  let r = run ~crash_plan:sender_crash Blockack.Protocols.simple in
  assert_correct "blockack-simple sender crash" r

let test_crash_before_start_and_after_end () =
  (* Crash at tick 0 (before anything is in flight) and long after the
     transfer would normally complete: both must leave the run correct. *)
  let early = Crash_plan.make [ { at = 0; endpoint = Sender_end; down_for = 100 } ] in
  let r = run ~messages:100 ~crash_plan:early Blockack.Protocols.multi in
  assert_correct "crash at t=0" r

(* ------------------------------------------------------------------ *)
(* Negative control: epoch-less restart is unsafe *)

let test_naive_receiver_restart_unsafe () =
  (* With [resync_epochs = false] a restarted receiver comes back at
     nr = 0 and re-accepts the sender's retransmissions: duplicate
     delivery (or a stuck transfer when the modulus arithmetic wedges).
     Either way the run must NOT be correct — this is the counterexample
     the epochs exist to close. *)
  let unsafe =
    List.exists
      (fun seed ->
        let r =
          run ~seed ~config:naive_config ~crash_plan:receiver_crash Blockack.Protocols.multi
        in
        (not r.Harness.completed) || r.Harness.duplicates > 0 || r.Harness.misordered > 0)
      [ 1; 2; 3; 4; 5 ]
  in
  if not unsafe then Alcotest.fail "naive receiver restart unexpectedly survived every seed"

let test_epochs_close_the_hole () =
  (* Same seeds, same plan, epochs on: every run correct. *)
  List.iter
    (fun seed ->
      let r = run ~seed ~crash_plan:receiver_crash Blockack.Protocols.multi in
      assert_correct "epochs on" r)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Results plumbing *)

let test_zero_crash_result_unchanged () =
  (* A crash-free run must report zeros and print the historical one-line
     format (no crash segment) — the cram pins depend on it. *)
  let r = run ~crash_plan:Crash_plan.none Blockack.Protocols.multi in
  assert_correct "no crash" r;
  check Alcotest.int "crashes" 0 r.Harness.crashes;
  check Alcotest.int "resync rounds" 0 r.Harness.resync_rounds;
  check Alcotest.bool "no recovery samples" true (r.Harness.resync_ticks = None);
  let line = Format.asprintf "%a" Harness.pp_result r in
  check Alcotest.bool "no crash segment" false
    (String.length line >= 7
    && List.exists
         (fun i -> String.sub line i 7 = "crashes")
         (List.init (String.length line - 6) Fun.id))

let test_crash_result_pp () =
  let r = run ~crash_plan:sender_crash Blockack.Protocols.multi in
  let line = Format.asprintf "%a" Harness.pp_result r in
  let has_segment =
    List.exists
      (fun i -> String.sub line i 7 = "crashes")
      (List.init (String.length line - 6) Fun.id)
  in
  check Alcotest.bool "crash segment present" true has_segment

let test_crash_plan_validation () =
  Alcotest.check_raises "negative tick" (Invalid_argument "Crash_plan: crash tick must be >= 0")
    (fun () -> ignore (Crash_plan.make [ { at = -1; endpoint = Sender_end; down_for = 10 } ]));
  check Alcotest.string "replay key" "crash(S@150+80)"
    (Crash_plan.to_string (Crash_plan.make [ { at = 150; endpoint = Sender_end; down_for = 80 } ]));
  check Alcotest.string "empty plan" "none" (Crash_plan.to_string Crash_plan.none)

let test_determinism () =
  let snapshot () =
    let r = run ~seed:7 ~loss:0.1 ~crash_plan:both_crash Blockack.Protocols.multi in
    Format.asprintf "%a" Harness.pp_result r
  in
  check Alcotest.string "same seed, same run" (snapshot ()) (snapshot ())

(* ------------------------------------------------------------------ *)
(* Chaos campaign: the crash fault class *)

let campaign_seeds = List.init 10 (fun i -> i + 1)

let test_campaign_crash_class_clean () =
  let r =
    Chaos.run_campaign ~messages:30 ~seeds:campaign_seeds ~classes:[ Chaos.Crash ]
      Blockack.Protocols.multi
  in
  if not (Chaos.clean r) then
    Alcotest.failf "crash class failed for blockack-multi:@.%a" (fun ppf -> Chaos.pp_report ppf) r;
  match r.Chaos.classes with
  | [ c ] -> (
      check Alcotest.bool "supported" true c.Chaos.supported;
      check Alcotest.int "every seed ran" (List.length campaign_seeds) c.Chaos.runs;
      match c.Chaos.recovery with
      | None -> Alcotest.fail "crash class must report recovery metrics"
      | Some rec_ ->
          check Alcotest.bool "restarts recorded" true (rec_.Chaos.restarts > 0);
          check Alcotest.bool "handshake frames recorded" true (rec_.Chaos.resync_rounds > 0);
          check Alcotest.bool "recovery time positive" true (rec_.Chaos.mean_resync_ticks > 0.);
          check Alcotest.bool "mean <= max" true
            (rec_.Chaos.mean_resync_ticks <= rec_.Chaos.max_resync_ticks))
  | _ -> Alcotest.fail "expected exactly one class report"

let test_campaign_naive_restart_fails () =
  let r =
    Chaos.run_campaign ~messages:30 ~config:Chaos.naive_restart_config ~seeds:campaign_seeds
      ~classes:[ Chaos.Crash ] Blockack.Protocols.multi
  in
  check Alcotest.bool "naive restart config must fail the crash class" false (Chaos.clean r);
  match (List.hd r.Chaos.classes).Chaos.first_failure with
  | None -> Alcotest.fail "expected a first failure with a replay key"
  | Some f ->
      check Alcotest.bool "failure carries its crash plan" true
        (f.Chaos.crash_plan <> Crash_plan.none)

let test_campaign_crash_skipped_when_unsupported () =
  (* Selective repeat has no crash-restart lifecycle: the class must show
     up as an explicit skipped row, not silently vanish or abort. *)
  let r =
    Chaos.run_campaign ~messages:30 ~seeds:campaign_seeds ~classes:[ Chaos.Crash ]
      Ba_baselines.Selective_repeat.protocol
  in
  match r.Chaos.classes with
  | [ c ] ->
      check Alcotest.bool "unsupported" false c.Chaos.supported;
      check Alcotest.int "no runs" 0 c.Chaos.runs;
      check Alcotest.bool "still counts as clean" true (Chaos.clean r)
  | _ -> Alcotest.fail "expected exactly one class report"

let test_campaign_crash_failure_replays () =
  (* The replay key (seed + derived plans) must reproduce the campaign's
     failing run exactly — same verdict, same counters. *)
  let r =
    Chaos.run_campaign ~messages:30 ~config:Chaos.naive_restart_config ~seeds:campaign_seeds
      ~classes:[ Chaos.Crash ] Blockack.Protocols.multi
  in
  match (List.hd r.Chaos.classes).Chaos.first_failure with
  | None -> Alcotest.fail "expected a failure to replay"
  | Some f -> (
      match
        Chaos.run_one ~messages:30 ~config:Chaos.naive_restart_config Blockack.Protocols.multi
          f.Chaos.fault ~seed:f.Chaos.seed
      with
      | None -> Alcotest.fail "replay did not reproduce the failure"
      | Some g ->
          check Alcotest.string "same crash plan" (Crash_plan.to_string f.Chaos.crash_plan)
            (Crash_plan.to_string g.Chaos.crash_plan);
          check Alcotest.int "same delivered count" f.Chaos.result.Harness.delivered
            g.Chaos.result.Harness.delivered;
          check Alcotest.int "same duplicate count" f.Chaos.result.Harness.duplicates
            g.Chaos.result.Harness.duplicates)

let test_crash_plan_string_roundtrip () =
  List.iter
    (fun seed ->
      let plan = Chaos.crash_plan_for ~seed in
      let key = Crash_plan.to_string plan in
      match Crash_plan.of_string key with
      | Ok p -> check Alcotest.string (Printf.sprintf "seed %d roundtrips" seed) key
                  (Crash_plan.to_string p)
      | Error msg -> Alcotest.failf "seed %d: %s" seed msg)
    campaign_seeds;
  (match Crash_plan.of_string "none" with
  | Ok p -> check Alcotest.bool "none parses" true (p = Crash_plan.none)
  | Error msg -> Alcotest.fail msg);
  match Crash_plan.of_string "crash(X@5+5)" with
  | Ok _ -> Alcotest.fail "bad endpoint letter accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "crash"
    [
      ( "harness",
        [
          Alcotest.test_case "sender crash recovers" `Quick test_sender_crash_recovers;
          Alcotest.test_case "receiver crash recovers" `Quick test_receiver_crash_recovers;
          Alcotest.test_case "double crash recovers" `Quick test_double_crash_recovers;
          Alcotest.test_case "crash under loss" `Quick test_crash_under_loss;
          Alcotest.test_case "simple sender crash" `Quick test_simple_sender_crash_recovers;
          Alcotest.test_case "crash at t=0" `Quick test_crash_before_start_and_after_end;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "naive restart is unsafe" `Quick test_naive_receiver_restart_unsafe;
          Alcotest.test_case "epochs close the hole" `Quick test_epochs_close_the_hole;
        ] );
      ( "results",
        [
          Alcotest.test_case "zero-crash result unchanged" `Quick test_zero_crash_result_unchanged;
          Alcotest.test_case "crash segment printed" `Quick test_crash_result_pp;
          Alcotest.test_case "plan validation + replay key" `Quick test_crash_plan_validation;
          Alcotest.test_case "deterministic" `Quick test_determinism;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "crash class clean for blockack-multi" `Quick
            test_campaign_crash_class_clean;
          Alcotest.test_case "naive restart fails the campaign" `Quick
            test_campaign_naive_restart_fails;
          Alcotest.test_case "unsupported protocol skipped" `Quick
            test_campaign_crash_skipped_when_unsupported;
          Alcotest.test_case "crash failures replay exactly" `Quick
            test_campaign_crash_failure_replays;
          Alcotest.test_case "crash plan string roundtrip" `Quick
            test_crash_plan_string_roundtrip;
        ] );
    ]
