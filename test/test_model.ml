(* Tests for the formal layer: Iset, the invariant (assertions 6-8), the
   protocol specs of Sections II/IV/V, the broken bounded go-back-N, the
   explorer and scripted scenarios.

   These are the mechanised versions of the paper's Section III-V proofs:
   exhaustive exploration replaces the hand proof for small parameters. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Iset = Ba_model.Iset
module Invariant = Ba_model.Invariant
module Explorer = Ba_verify.Explorer
module Scenario = Ba_verify.Scenario

(* ------------------------------------------------------------------ *)
(* Iset *)

let test_iset_basic () =
  let s = Iset.of_list [ 5; 1; 3; 3 ] in
  check (Alcotest.list Alcotest.int) "canonical" [ 1; 3; 5 ] (Iset.elements s);
  check Alcotest.bool "mem" true (Iset.mem 3 s);
  check Alcotest.bool "not mem" false (Iset.mem 2 s);
  check Alcotest.int "cardinal" 3 (Iset.cardinal s);
  check (Alcotest.option Alcotest.int) "max" (Some 5) (Iset.max_elt s)

let test_iset_add_remove () =
  let s = Iset.add 2 (Iset.add 2 Iset.empty) in
  check Alcotest.int "idempotent add" 1 (Iset.cardinal s);
  let s = Iset.remove 2 s in
  check Alcotest.bool "removed" true (Iset.is_empty s);
  check Alcotest.bool "remove absent ok" true (Iset.is_empty (Iset.remove 9 s))

let test_iset_add_range () =
  let s = Iset.add_range ~lo:3 ~hi:6 Iset.empty in
  check (Alcotest.list Alcotest.int) "range" [ 3; 4; 5; 6 ] (Iset.elements s);
  check Alcotest.bool "empty range" true (Iset.is_empty (Iset.add_range ~lo:5 ~hi:4 Iset.empty))

let test_iset_structural_equality () =
  let a = Iset.of_list [ 1; 2; 3 ] and b = Iset.add 3 (Iset.add 1 (Iset.add 2 Iset.empty)) in
  check Alcotest.bool "canonical equality" true (a = b)

(* ------------------------------------------------------------------ *)
(* Invariant: craft views that satisfy / violate each assertion. *)

let base_view =
  {
    Invariant.w = 2;
    na = 1;
    ns = 3;
    nr = 2;
    vr = 2;
    ackd = (fun m -> m < 1);
    rcvd = (fun m -> m < 2);
    sr_count = (fun _ -> 0);
    rs_count = (fun _ -> 0);
    horizon = 8;
  }

let test_invariant_holds_on_consistent_view () =
  check (Alcotest.option Alcotest.string) "all hold" None (Invariant.check base_view)

let test_assertion_6_violations () =
  let bad = { base_view with na = 3 } in
  (match Invariant.assertion_6 bad with
  | Some msg -> check Alcotest.bool "names 6" true (String.length msg > 0 && msg.[0] = '6')
  | None -> Alcotest.fail "expected violation of 6");
  let too_wide = { base_view with ns = 4 } in
  check Alcotest.bool "window overflow caught" true (Invariant.assertion_6 too_wide <> None)

let test_assertion_7_violations () =
  let not_acked_below_na = { base_view with ackd = (fun _ -> false) } in
  check Alcotest.bool "missing ackd below na" true
    (Invariant.assertion_7 not_acked_below_na <> None);
  let acked_at_na = { base_view with ackd = (fun m -> m <= 1) } in
  check Alcotest.bool "ackd[na] forbidden" true (Invariant.assertion_7 acked_at_na <> None);
  let rcvd_beyond_ns = { base_view with rcvd = (fun m -> m < 2 || m = 5) } in
  check Alcotest.bool "rcvd beyond ns" true (Invariant.assertion_7 rcvd_beyond_ns <> None);
  let hole_below_vr = { base_view with rcvd = (fun m -> m = 1) } in
  check Alcotest.bool "hole below vr" true (Invariant.assertion_7 hole_below_vr <> None)

let test_assertion_8_violations () =
  let double_copy = { base_view with sr_count = (fun m -> if m = 2 then 2 else 0) } in
  check Alcotest.bool "two copies" true (Invariant.assertion_8 double_copy <> None);
  let data_and_ack = {
    base_view with
    sr_count = (fun m -> if m = 1 then 1 else 0);
    rs_count = (fun m -> if m = 1 then 1 else 0);
  } in
  check Alcotest.bool "data + covering ack" true (Invariant.assertion_8 data_and_ack <> None);
  let unsent_in_transit = { base_view with sr_count = (fun m -> if m = 5 then 1 else 0) } in
  check Alcotest.bool "unsent data in transit" true (Invariant.assertion_8 unsent_in_transit <> None);
  let acked_in_transit = { base_view with sr_count = (fun m -> if m = 0 then 1 else 0) } in
  check Alcotest.bool "acked data in transit" true (Invariant.assertion_8 acked_in_transit <> None);
  let ack_beyond_nr = { base_view with rs_count = (fun m -> if m = 2 then 1 else 0) } in
  check Alcotest.bool "ack covers unaccepted" true (Invariant.assertion_8 ack_beyond_nr <> None);
  let valid_dup_data = { base_view with sr_count = (fun m -> if m = 1 then 1 else 0) } in
  check (Alcotest.option Alcotest.string) "legal in-transit data" None
    (Invariant.assertion_8 valid_dup_data)

(* ------------------------------------------------------------------ *)
(* Crash–restart spec: the naive restart's two failure symptoms, and the
   epoch handshake's self-stabilization proof (safety in every state,
   assertions 6-8 in every stabilized state, progress from every state). *)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let crash_spec ~epochs ~victims ?(max_crashes = 1) ?(w = 1) ?n ?(limit = 2) () =
  Ba_model.Ba_spec_crash.default ~w ?n ~limit ~epochs ~max_crashes ~victims ()

let test_crash_naive_receiver_duplicates () =
  let r = Explorer.run_spec ~max_states:500_000 (crash_spec ~epochs:false ~victims:`Receiver ()) in
  match r.Explorer.violation with
  | Some (msg, path) ->
      check Alcotest.bool "duplicate delivery named" true (contains ~needle:"duplicate delivery" msg);
      check Alcotest.bool "counterexample nonempty" true (List.length path > 1)
  | None -> Alcotest.fail "naive receiver restart should deliver a duplicate"

let test_crash_naive_sender_phantom () =
  let r = Explorer.run_spec ~max_states:500_000 (crash_spec ~epochs:false ~victims:`Sender ()) in
  match r.Explorer.violation with
  | Some (msg, _) ->
      check Alcotest.bool "phantom delivery named" true (contains ~needle:"phantom delivery" msg)
  | None -> Alcotest.fail "naive sender restart should deliver a phantom payload"

let assert_crash_verified name ~victims ?max_crashes ?w ?n ?limit () =
  let r =
    Explorer.run_spec ~max_states:500_000
      (crash_spec ~epochs:true ~victims ?max_crashes ?w ?n ?limit ())
  in
  (match r.Explorer.violation with
  | None -> ()
  | Some (msg, _) -> Alcotest.failf "%s: unexpected violation: %s" name msg);
  check Alcotest.bool (name ^ " not capped") false r.Explorer.capped;
  check (Alcotest.option Alcotest.bool) (name ^ " live") (Some true) r.Explorer.live

let test_crash_epochs_safe_and_live () =
  assert_crash_verified "epochs w=1 c=1" ~victims:`Both ();
  assert_crash_verified "epochs w=1 c=2" ~victims:`Both ~max_crashes:2 ()

let test_crash_epochs_safe_and_live_w2 () =
  assert_crash_verified "epochs w=2 c=1" ~victims:`Both ~w:2 ~limit:3 ()

(* ------------------------------------------------------------------ *)
(* Explorer on the paper's protocols. *)

let run_spec ?(max_states = 500_000) spec = Explorer.run_spec ~max_states spec

let assert_verified name (r : Explorer.result) =
  (match r.Explorer.violation with
  | None -> ()
  | Some (msg, _) -> Alcotest.failf "%s: unexpected violation: %s" name msg);
  check Alcotest.bool (name ^ " not capped") false r.Explorer.capped;
  check Alcotest.int (name ^ " deadlock-free") 0 r.Explorer.deadlock_count;
  check (Alcotest.option Alcotest.bool) (name ^ " live") (Some true) r.Explorer.live;
  check Alcotest.bool (name ^ " completes") true (r.Explorer.terminal_count > 0)

let test_section2_verified_small () =
  assert_verified "II w=1" (run_spec (Ba_model.Ba_spec.default ~w:1 ~limit:3))

let test_section2_verified () =
  assert_verified "II w=2" (run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:4))

let test_section2_verified_w3 () =
  assert_verified "II w=3" (run_spec (Ba_model.Ba_spec.default ~w:3 ~limit:5))

let test_section4_verified () =
  assert_verified "IV w=2" (run_spec (Ba_model.Ba_spec_timeout.default ~w:2 ~limit:4))

let test_section4_more_reachable_states () =
  (* Action 2' strictly generalises action 2, so the Section IV system
     reaches at least as many states. *)
  let r2 = run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:4) in
  let r4 = run_spec (Ba_model.Ba_spec_timeout.default ~w:2 ~limit:4) in
  check Alcotest.bool "IV superset of II" true
    (r4.Explorer.state_count >= r2.Explorer.state_count)

let test_section5_verified_with_2w () =
  assert_verified "V n=2w" (run_spec (Ba_model.Ba_spec_finite.default ~w:2 ~limit:4 ()))

let test_section5_equals_section2 () =
  (* With n = 2w the modulo encoding is transparent: the finite-number
     system is isomorphic to the unbounded one, so the reachable state
     counts coincide. *)
  let unbounded = run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:4) in
  let finite = run_spec (Ba_model.Ba_spec_finite.default ~w:2 ~limit:4 ()) in
  check Alcotest.int "same state count" unbounded.Explorer.state_count
    finite.Explorer.state_count;
  check Alcotest.int "same transition count" unbounded.Explorer.transition_count
    finite.Explorer.transition_count

let test_section5_n_too_small_fails () =
  let r = run_spec (Ba_model.Ba_spec_finite.default ~w:2 ~n:3 ~limit:6 ()) in
  match r.Explorer.violation with
  | Some (msg, path) ->
      check Alcotest.bool "reconstruction error" true
        (String.length msg >= 14 && String.sub msg 0 14 = "reconstruction");
      check Alcotest.bool "counterexample nonempty" true (List.length path > 1)
  | None -> Alcotest.fail "expected a violation with n = 2w - 1"

let test_section5_n_larger_than_2w_ok () =
  assert_verified "V n=3w" (run_spec (Ba_model.Ba_spec_finite.default ~w:2 ~n:6 ~limit:4 ()))

let test_section5_bounded_storage_verified () =
  assert_verified "V-bounded w=2" (run_spec (Ba_model.Ba_spec_bounded.default ~w:2 ~limit:4 ()))

let test_section5_bounded_storage_isomorphic () =
  (* The full refinement chain II -> V -> V-with-bounded-storage is
     state-for-state isomorphic. *)
  let unbounded = run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:4) in
  let bounded = run_spec (Ba_model.Ba_spec_bounded.default ~w:2 ~limit:4 ()) in
  check Alcotest.int "same states" unbounded.Explorer.state_count bounded.Explorer.state_count;
  check Alcotest.int "same transitions" unbounded.Explorer.transition_count
    bounded.Explorer.transition_count

let test_section5_bounded_rejects_bad_modulus () =
  Alcotest.check_raises "w does not divide n"
    (Invalid_argument "Ba_spec_bounded: n must be a positive multiple of w") (fun () ->
      ignore (Ba_model.Ba_spec_bounded.default ~w:2 ~n:5 ~limit:4 ()))

(* Random walks probe windows far beyond exhaustive reach: apply random
   enabled transitions and require the invariant at every step. *)
let random_walk_preserves_invariant (module S : Ba_model.Spec_types.SPEC) ~seed ~steps =
  let rng = Ba_util.Rng.create seed in
  let rec go state k =
    if k >= steps then true
    else begin
      match S.check state with
      | Some msg -> Alcotest.failf "%s: invariant broke on a walk: %s" S.name msg
      | None -> (
          match S.transitions state with
          | [] -> true
          | ts ->
              let { Ba_model.Spec_types.target; _ } =
                List.nth ts (Ba_util.Rng.int rng (List.length ts))
              in
              go target (k + 1))
    end
  in
  go S.initial 0

let prop_walk_section2_w5 =
  QCheck.Test.make ~name:"Section II invariant holds on random walks (w=5)" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let module S = Ba_model.Ba_spec.Make (struct
        let w = 5
        let limit = 12
      end) in
      random_walk_preserves_invariant (module S) ~seed ~steps:400)

let prop_walk_section4_w4 =
  QCheck.Test.make ~name:"Section IV invariant holds on random walks (w=4)" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let module S = Ba_model.Ba_spec_timeout.Make (struct
        let w = 4
        let limit = 10
      end) in
      random_walk_preserves_invariant (module S) ~seed ~steps:400)

let prop_walk_bounded_w4 =
  QCheck.Test.make ~name:"bounded-storage refinement holds on random walks (w=4)" ~count:40
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let module S = Ba_model.Ba_spec_bounded.Make (struct
        let w = 4
        let n = 8
        let limit = 10
      end) in
      random_walk_preserves_invariant (module S) ~seed ~steps:400)

let test_reuse_spec_verified () =
  assert_verified "VI reuse w=2 lead=4"
    (run_spec (Ba_model.Ba_reuse_spec.default ~w:2 ~lead:4 ~limit:5 ()))

let test_reuse_spec_degenerates_to_section4 () =
  (* With lead = w the reuse rule is the ordinary window: the system is
     the Section IV protocol, state for state. *)
  let reuse = run_spec (Ba_model.Ba_reuse_spec.default ~w:2 ~lead:2 ~limit:4 ()) in
  let base = run_spec (Ba_model.Ba_spec_timeout.default ~w:2 ~limit:4) in
  check Alcotest.int "same states" base.Explorer.state_count reuse.Explorer.state_count;
  check Alcotest.int "same transitions" base.Explorer.transition_count
    reuse.Explorer.transition_count

let test_reuse_spec_reaches_beyond_classic_window () =
  (* A lead larger than w must add genuinely new behaviours. *)
  let reuse = run_spec (Ba_model.Ba_reuse_spec.default ~w:2 ~lead:4 ~limit:4 ()) in
  let base = run_spec (Ba_model.Ba_spec_timeout.default ~w:2 ~limit:4) in
  check Alcotest.bool "strictly more states" true
    (reuse.Explorer.state_count > base.Explorer.state_count)

module Reuse_w2 = Ba_model.Ba_reuse_spec.Make (struct
  let w = 2
  let lead = 4
  let n = 8
  let limit = 6
end)

module Reuse_scenario = Scenario.Make (Reuse_w2)

let test_reuse_scenario_runs_ahead () =
  (* The paper's Section VI situation: a block ack is lost, recovery
     re-acknowledges only part of the outstanding range, and the sender
     reuses the freed budget to run more than w ahead of na. *)
  let script =
    [
      "send(0"; "send(1";
      "recv_data(w0"; "recv_data(w1";
      "advance_vr(0"; "advance_vr(1"; "send_ack(0,1";
      "lose_ack(0,1";
      "timeout(0)";
      "recv_data(w0";  (* duplicate of 0 triggers a singleton re-ack *)
      "recv_ack(w0";
      (* Budget freed: send 2, get it acknowledged (message 1's ack is
         still lost, so na stays at 1), then send 3 — the flight band is
         now [1, 4), wider than the classic w = 2 window. *)
      "send(2";
      "recv_data(w2"; "advance_vr(2"; "send_ack(2,2"; "recv_ack(w2";
      "send(3";
    ]
  in
  let outcome = Reuse_scenario.replay script in
  (match outcome.Ba_verify.Scenario.failed_at with
  | None -> ()
  | Some (i, wanted) -> Alcotest.failf "reuse scenario stuck at %d wanting %s" i wanted);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "no violation" None outcome.Ba_verify.Scenario.first_violation;
  match Reuse_scenario.final_state script with
  | Some s ->
      check Alcotest.int "na advanced past 0 only" 1 s.Ba_model.Ba_reuse_spec.na;
      check Alcotest.int "ns ran ahead" 4 s.Ba_model.Ba_reuse_spec.ns;
      check Alcotest.bool "flight band exceeds the classic window" true
        (s.Ba_model.Ba_reuse_spec.ns - s.Ba_model.Ba_reuse_spec.na > 2)
  | None -> Alcotest.fail "reuse scenario should apply"

let test_gbn_bounded_unsafe () =
  let r = run_spec (Ba_model.Gbn_bounded_spec.default ~w:2 ~limit:6 ()) in
  match r.Explorer.violation with
  | Some (msg, path) ->
      check Alcotest.bool "found quickly" true (List.length path <= 12);
      check Alcotest.bool "meaningful message" true (String.length msg > 0)
  | None -> Alcotest.fail "expected bounded go-back-N to violate safety under reorder"

let test_gbn_larger_n_still_unsafe () =
  (* Increasing the modulus delays but does not remove the failure while
     reorder is possible. *)
  let r = run_spec ~max_states:1_500_000 (Ba_model.Gbn_bounded_spec.default ~w:2 ~n:4 ~limit:8 ()) in
  check Alcotest.bool "still violated or capped" true
    (r.Explorer.violation <> None || r.Explorer.capped)

let test_explorer_limit_zero () =
  (* A zero-message transfer is trivially verified: one state, terminal. *)
  let r = run_spec (Ba_model.Ba_spec.default ~w:2 ~limit:0) in
  check Alcotest.int "single state" 1 r.Explorer.state_count;
  check Alcotest.int "terminal" 1 r.Explorer.terminal_count;
  check (Alcotest.option Alcotest.bool) "live" (Some true) r.Explorer.live

let test_explorer_cap () =
  let r = Explorer.run_spec ~max_states:10 (Ba_model.Ba_spec.default ~w:2 ~limit:4) in
  check Alcotest.bool "capped" true r.Explorer.capped;
  check (Alcotest.option Alcotest.bool) "liveness skipped" None r.Explorer.live

(* A deliberately broken spec: deadlocks and fails liveness. *)
module Stuck_spec = struct
  type state = int

  let name = "stuck-spec"
  let initial = 0

  (* 0 -> 1 -> 2 (dead end, non-terminal); terminal is 9, reachable only
     from 0. *)
  let transitions s =
    let step target = { Ba_model.Spec_types.label = Printf.sprintf "go%d" target;
                        kind = Ba_model.Spec_types.Protocol; target } in
    match s with 0 -> [ step 1; step 9 ] | 1 -> [ step 2 ] | _ -> []

  let check _ = None
  let terminal s = s = 9
  let measure s = s
  let pp = Format.pp_print_int
end

let test_explorer_detects_deadlock_and_nonlive () =
  let module E = Explorer.Make (Stuck_spec) in
  let r = E.run () in
  check Alcotest.int "one dead end" 1 r.Explorer.deadlock_count;
  check (Alcotest.option Alcotest.bool) "not live" (Some false) r.Explorer.live;
  check Alcotest.bool "stuck state reported" true (r.Explorer.stuck_example <> None)

(* A spec whose measure decreases: the explorer must flag it. *)
module Shrinking_spec = struct
  type state = int

  let name = "shrinking-spec"
  let initial = 5

  let transitions s =
    if s > 0 then
      [ { Ba_model.Spec_types.label = "down"; kind = Ba_model.Spec_types.Protocol; target = s - 1 } ]
    else []

  let check _ = None
  let terminal s = s = 0
  let measure s = s
  let pp = Format.pp_print_int
end

let test_explorer_detects_measure_decrease () =
  let module E = Explorer.Make (Shrinking_spec) in
  let r = E.run () in
  match r.Explorer.violation with
  | Some (msg, _) ->
      check Alcotest.bool "mentions measure" true
        (String.length msg >= 7 && String.sub msg 0 7 = "measure")
  | None -> Alcotest.fail "expected measure violation"

(* ------------------------------------------------------------------ *)
(* Scenarios: the paper's introduction, replayed verbatim. *)

module Gbn_w2 = Ba_model.Gbn_bounded_spec.Make (struct
  let w = 2
  let n = 3
  let limit = 6
end)

module Gbn_scenario = Scenario.Make (Gbn_w2)

let intro_gbn_script =
  (* Send a window, deliver both, then the two cumulative acks arrive in
     the wrong order: the stale ack is decoded as a recent one. *)
  [ "send(0"; "send(1"; "recv_data(0"; "recv_data(1"; "recv_ack(1"; "recv_ack(0" ]

let test_intro_scenario_breaks_gbn () =
  let outcome = Gbn_scenario.replay intro_gbn_script in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "script completes" None
    outcome.Scenario.failed_at;
  match outcome.Scenario.first_violation with
  | Some (step, _) -> check Alcotest.int "violation at the stale ack" 5 step
  | None -> Alcotest.fail "expected the intro scenario to violate go-back-N safety"

module Ba_w2 = Ba_model.Ba_spec_finite.Make (struct
  let w = 2
  let n = 4
  let limit = 6
end)

module Ba_scenario = Scenario.Make (Ba_w2)

let intro_blockack_script =
  (* The same interleaving against block acknowledgment: each message is
     acknowledged by its own block, the two acks are reordered, and the
     sender simply waits for the missing block — no confusion. *)
  [
    "send(0"; "send(1";
    "recv_data(w0"; "advance_vr(0"; "send_ack(0,0";
    "recv_data(w1"; "advance_vr(1"; "send_ack(1,1";
    "recv_ack(w1"; (* the LATER ack arrives first *)
    "recv_ack(w0";
  ]

let test_intro_scenario_safe_for_blockack () =
  let outcome = Ba_scenario.replay intro_blockack_script in
  (match outcome.Scenario.failed_at with
  | None -> ()
  | Some (i, wanted) -> Alcotest.failf "script stuck at %d wanting %s" i wanted);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string))
    "no violation" None outcome.Scenario.first_violation;
  match Ba_scenario.final_state intro_blockack_script with
  | Some s ->
      check Alcotest.int "sender caught up" 2 s.Ba_model.Ba_spec_finite.na;
      check Alcotest.int "receiver accepted both" 2 s.Ba_model.Ba_spec_finite.nr
  | None -> Alcotest.fail "script should be applicable"

let test_blockack_reordered_ack_blocks_window () =
  (* After only the later ack (1,1) arrives, na must still be 0: the
     sender cannot move past the unacknowledged message 0. *)
  match Ba_scenario.final_state (List.filteri (fun i _ -> i < 9) intro_blockack_script) with
  | Some s ->
      check Alcotest.int "na still 0" 0 s.Ba_model.Ba_spec_finite.na;
      check Alcotest.int "ns unchanged" 2 s.Ba_model.Ba_spec_finite.ns
  | None -> Alcotest.fail "prefix script should be applicable"

module Ba_ii = Ba_model.Ba_spec.Make (struct
  let w = 2
  let limit = 2
end)

module Ba_ii_scenario = Scenario.Make (Ba_ii)

let test_progress_case0_recovery_chain () =
  (* Section III-B, Case 0: from a quiescent state (both channels empty,
     na < ns) only the timeout is enabled; executing it starts the chain
     timeout -> recv_data -> ack -> recv_ack that increments na. *)
  let script =
    [
      "send(0";
      "lose_data(0";  (* quiescent with one outstanding message *)
      "timeout->resend(0";
      "recv_data(0";
      "advance_vr(0";
      "send_ack(0,0";
      "recv_ack(0,0";
    ]
  in
  let outcome = Ba_ii_scenario.replay script in
  (match outcome.Scenario.failed_at with
  | None -> ()
  | Some (i, wanted) -> Alcotest.failf "chain stuck at %d wanting %s" i wanted);
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.string)) "no violation" None
    outcome.Scenario.first_violation;
  match Ba_ii_scenario.final_state script with
  | Some s -> check Alcotest.int "na incremented" 1 s.Ba_model.Ba_kernel.na
  | None -> Alcotest.fail "chain should apply"

let test_timeout_disabled_when_channel_nonempty () =
  (* Case 1 of the progress proof: with anything in transit the timeout
     must be disabled (its guard demands both channels empty). *)
  match Ba_ii_scenario.final_state [ "send(0" ] with
  | None -> Alcotest.fail "send should apply"
  | Some s ->
      let labels =
        List.map (fun { Ba_model.Spec_types.label; _ } -> label) (Ba_ii.transitions s)
      in
      check Alcotest.bool "no timeout transition" false
        (List.exists (fun l -> String.length l >= 7 && String.sub l 0 7 = "timeout") labels)

let test_scenario_stuck_reports () =
  let outcome = Gbn_scenario.replay [ "send(0"; "bogus-action" ] in
  match outcome.Scenario.failed_at with
  | Some (1, "bogus-action") -> ()
  | Some (i, l) -> Alcotest.failf "wrong stuck point: %d %s" i l
  | None -> Alcotest.fail "expected the script to get stuck"

let () =
  Alcotest.run "ba_model"
    [
      ( "iset",
        [
          Alcotest.test_case "basic" `Quick test_iset_basic;
          Alcotest.test_case "add/remove" `Quick test_iset_add_remove;
          Alcotest.test_case "add_range" `Quick test_iset_add_range;
          Alcotest.test_case "structural equality" `Quick test_iset_structural_equality;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "consistent view passes" `Quick test_invariant_holds_on_consistent_view;
          Alcotest.test_case "assertion 6 violations" `Quick test_assertion_6_violations;
          Alcotest.test_case "assertion 7 violations" `Quick test_assertion_7_violations;
          Alcotest.test_case "assertion 8 violations" `Quick test_assertion_8_violations;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "Section II verified (w=1)" `Quick test_section2_verified_small;
          Alcotest.test_case "Section II verified (w=2)" `Quick test_section2_verified;
          Alcotest.test_case "Section II verified (w=3)" `Slow test_section2_verified_w3;
          Alcotest.test_case "Section IV verified" `Quick test_section4_verified;
          Alcotest.test_case "Section IV reaches more states" `Quick
            test_section4_more_reachable_states;
          Alcotest.test_case "Section V verified with n=2w" `Quick test_section5_verified_with_2w;
          Alcotest.test_case "Section V isomorphic to Section II" `Quick
            test_section5_equals_section2;
          Alcotest.test_case "Section V fails with n=2w-1" `Quick test_section5_n_too_small_fails;
          Alcotest.test_case "Section V ok with n>2w" `Quick test_section5_n_larger_than_2w_ok;
          Alcotest.test_case "Section V bounded storage verified" `Quick
            test_section5_bounded_storage_verified;
          Alcotest.test_case "Section V bounded storage isomorphic" `Quick
            test_section5_bounded_storage_isomorphic;
          Alcotest.test_case "Section V bounded rejects bad modulus" `Quick
            test_section5_bounded_rejects_bad_modulus;
          Alcotest.test_case "Section VI reuse spec verified" `Quick test_reuse_spec_verified;
          Alcotest.test_case "reuse degenerates to Section IV at lead=w" `Quick
            test_reuse_spec_degenerates_to_section4;
          Alcotest.test_case "reuse reaches beyond the classic window" `Quick
            test_reuse_spec_reaches_beyond_classic_window;
          qcheck prop_walk_section2_w5;
          qcheck prop_walk_section4_w4;
          qcheck prop_walk_bounded_w4;
          Alcotest.test_case "bounded go-back-N unsafe" `Quick test_gbn_bounded_unsafe;
          Alcotest.test_case "bounded go-back-N unsafe at larger n" `Slow
            test_gbn_larger_n_still_unsafe;
          Alcotest.test_case "limit 0 trivially verified" `Quick test_explorer_limit_zero;
          Alcotest.test_case "cap respected" `Quick test_explorer_cap;
          Alcotest.test_case "deadlock and liveness detection" `Quick
            test_explorer_detects_deadlock_and_nonlive;
          Alcotest.test_case "measure decrease detection" `Quick
            test_explorer_detects_measure_decrease;
        ] );
      ( "crash",
        [
          Alcotest.test_case "naive receiver restart delivers duplicates" `Quick
            test_crash_naive_receiver_duplicates;
          Alcotest.test_case "naive sender restart delivers phantoms" `Quick
            test_crash_naive_sender_phantom;
          Alcotest.test_case "epochs safe and live (w=1)" `Quick test_crash_epochs_safe_and_live;
          Alcotest.test_case "epochs safe and live (w=2)" `Slow
            test_crash_epochs_safe_and_live_w2;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "intro breaks bounded go-back-N" `Quick
            test_intro_scenario_breaks_gbn;
          Alcotest.test_case "intro safe for block ack" `Quick test_intro_scenario_safe_for_blockack;
          Alcotest.test_case "reordered ack blocks window" `Quick
            test_blockack_reordered_ack_blocks_window;
          Alcotest.test_case "reuse scenario runs ahead" `Quick test_reuse_scenario_runs_ahead;
          Alcotest.test_case "progress Case 0 recovery chain" `Quick
            test_progress_case0_recovery_chain;
          Alcotest.test_case "timeout disabled when channel nonempty" `Quick
            test_timeout_disabled_when_channel_nonempty;
          Alcotest.test_case "stuck script reported" `Quick test_scenario_stuck_reports;
        ] );
    ]
