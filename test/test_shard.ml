(* Sharded-fabric tests (also wired to the `shard-smoke` alias): the
   scale runner must be a pure function of the model parameters —
   [shards] and [jobs] are scheduling knobs, so a sharded run is
   byte-identical to the unsharded ([shards = 1], [jobs = 1]) run for
   any shard count and any job count, including under storm churn — and
   the cell-local admission/lease machinery must keep its Fabric
   semantics (budgets honoured, capacity-limited runs complete). *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Shard = Ba_proto.Shard
module Fabric = Ba_proto.Fabric
module Chaos = Ba_verify.Chaos
module Registry = Ba_registry.Registry
module Dist = Ba_channel.Dist

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry is missing %S" name

let mixed_specs ~messages ~flows =
  let protos = [| "blockack-multi"; "selective-repeat"; "go-back-n" |] in
  List.init flows (fun i ->
      let e = entry protos.(i mod Array.length protos) in
      let config = Registry.config ~window:4 ~rto:800 e () in
      Fabric.spec ~config ~messages ~payload_size:24 e.Registry.protocol)

(* ------------------------------------------------------------------ *)
(* Baseline behaviour *)

let test_clean_run_completes () =
  let specs = mixed_specs ~messages:6 ~flows:48 in
  let r = Shard.run ~seed:7 ~jobs:1 ~shards:1 ~cell:8 specs in
  check Alcotest.bool "completed" true r.Shard.completed;
  check Alcotest.int "cells" 6 r.Shard.cells;
  check Alcotest.int "flows" 48 r.Shard.flows;
  check Alcotest.int "all delivered" r.Shard.messages r.Shard.delivered;
  check Alcotest.int "no duplicates" 0 r.Shard.duplicates;
  check Alcotest.int "no corruption" 0 r.Shard.corrupted;
  check Alcotest.int "nothing refused" 0 r.Shard.refused

let test_capacity_lease_run_completes () =
  (* A tight shared bottleneck realised as per-cell leases: the run must
     still complete, and the lease layer (not the per-cell links) must
     be doing the queueing. *)
  let specs = mixed_specs ~messages:5 ~flows:24 in
  let r = Shard.run ~seed:11 ~jobs:1 ~shards:1 ~cell:6 ~capacity:(2, 64) specs in
  check Alcotest.bool "completed under lease" true r.Shard.completed;
  check Alcotest.int "all delivered" r.Shard.messages r.Shard.delivered

let test_budget_admission_is_cell_local () =
  (* A budget far below the unclamped demand: every cell must degrade
     (clamp or refuse) using only its own share, and the sampled model
     memory must respect the global budget. *)
  let specs = mixed_specs ~messages:5 ~flows:32 in
  let budget = 4 * 1024 in
  let r = Shard.run ~seed:3 ~jobs:1 ~shards:1 ~cell:8 ~memory_budget:budget specs in
  check Alcotest.bool "degraded somewhere" true
    (r.Shard.clamped_cells > 0 || r.Shard.refused > 0);
  check Alcotest.bool "sampled peak within budget" true (r.Shard.mem_peak_bytes <= budget)

(* ------------------------------------------------------------------ *)
(* Determinism: shards/jobs are scheduling, not semantics *)

type scenario = {
  sc_seed : int;
  sc_flows : int;
  sc_cell : int;
  sc_messages : int;
  sc_loss : bool;
  sc_capacity : (int * int) option;
  sc_budget : int option;
  sc_watchdog : bool;
  sc_storm : bool;  (* churn population + seed-derived storm plans *)
  sc_shards : int;
  sc_jobs : int;
}

let scenario_gen =
  QCheck.Gen.(
    let* sc_seed = int_range 1 1000 in
    let* sc_flows = int_range 6 30 in
    let* sc_cell = int_range 3 9 in
    let* sc_messages = int_range 3 6 in
    let* sc_loss = bool in
    let* with_cap = bool in
    let* svc = int_range 1 4 in
    let* qcap = int_range 8 40 in
    let* with_budget = bool in
    let* budget = int_range 2 20 in
    let* sc_watchdog = bool in
    let* sc_storm = bool in
    let* sc_shards = int_range 2 5 in
    let* sc_jobs = int_range 2 4 in
    return
      {
        sc_seed;
        sc_flows;
        sc_cell;
        sc_messages;
        sc_loss;
        sc_capacity = (if with_cap then Some (svc, qcap) else None);
        sc_budget = (if with_budget then Some (budget * 1024) else None);
        sc_watchdog;
        sc_storm;
        sc_shards;
        sc_jobs;
      })

let scenario_print sc =
  Printf.sprintf
    "seed=%d flows=%d cell=%d msgs=%d loss=%b cap=%s budget=%s dog=%b storm=%b \
     shards=%d jobs=%d"
    sc.sc_seed sc.sc_flows sc.sc_cell sc.sc_messages sc.sc_loss
    (match sc.sc_capacity with
    | Some (s, q) -> Printf.sprintf "(%d,%d)" s q
    | None -> "-")
    (match sc.sc_budget with Some b -> string_of_int b | None -> "-")
    sc.sc_watchdog sc.sc_storm sc.sc_shards sc.sc_jobs

let run_scenario sc ~shards ~jobs =
  let specs =
    if sc.sc_storm then
      (* A churning population: long-lived bases plus leavers/returners,
         the soak's flow pattern at miniature scale. *)
      let e = entry "blockack-multi" in
      let config = Registry.config ~window:4 ~rto:800 e () in
      Fabric.churn ~base:2 ~churners:2 ~messages:sc.sc_messages ~payload_size:24
        ~config ~seed:sc.sc_seed e.Registry.protocol
      @ mixed_specs ~messages:sc.sc_messages ~flows:sc.sc_flows
    else mixed_specs ~messages:sc.sc_messages ~flows:sc.sc_flows
  in
  let plans_for =
    if sc.sc_storm then
      Some (fun ~cell_seed -> Chaos.plans_for Chaos.Storm ~seed:cell_seed)
    else None
  in
  let r =
    Shard.run ~seed:sc.sc_seed ~jobs ~shards ~cell:sc.sc_cell ~barrier:500
      ~data_loss:(if sc.sc_loss then 0.03 else 0.)
      ~ack_loss:(if sc.sc_loss then 0.03 else 0.)
      ?capacity:sc.sc_capacity ?plans_for ?memory_budget:sc.sc_budget
      ?watchdog:(if sc.sc_watchdog then Some Ba_proto.Watchdog.default_config else None)
      ~deadline:120_000 specs
  in
  Shard.summary r

let test_sharded_equals_unsharded =
  qcheck
    (QCheck.Test.make ~count:12
       ~name:"sharded run byte-identical to unsharded at any shards x jobs"
       (QCheck.make ~print:scenario_print scenario_gen)
       (fun sc ->
         let reference = run_scenario sc ~shards:1 ~jobs:1 in
         let sharded = run_scenario sc ~shards:sc.sc_shards ~jobs:sc.sc_jobs in
         if String.equal reference sharded then true
         else
           QCheck.Test.fail_reportf "diverged:\n--- shards=1 jobs=1\n%s\n--- %s\n%s"
             reference (scenario_print sc) sharded))

let test_storm_churn_shard_sweep () =
  (* The compound incident, pinned across a shard-count sweep: one
     churning population under seed-derived storm plans, watchdog armed,
     capacity leased — every shard count and job count must reproduce
     the reference summary byte for byte. *)
  let sc =
    {
      sc_seed = 42;
      sc_flows = 12;
      sc_cell = 5;
      sc_messages = 5;
      sc_loss = true;
      sc_capacity = Some (2, 32);
      sc_budget = Some (8 * 1024);
      sc_watchdog = true;
      sc_storm = true;
      sc_shards = 1;
      sc_jobs = 1;
    }
  in
  let reference = run_scenario sc ~shards:1 ~jobs:1 in
  List.iter
    (fun (shards, jobs) ->
      check Alcotest.string
        (Printf.sprintf "shards=%d jobs=%d" shards jobs)
        reference
        (run_scenario sc ~shards ~jobs))
    [ (2, 1); (3, 4); (7, 2); (16, 3) ]

let () =
  Alcotest.run "shard"
    [
      ( "model",
        [
          Alcotest.test_case "clean run completes" `Quick test_clean_run_completes;
          Alcotest.test_case "capacity lease run completes" `Quick
            test_capacity_lease_run_completes;
          Alcotest.test_case "budget admission is cell-local" `Quick
            test_budget_admission_is_cell_local;
        ] );
      ( "determinism",
        [
          test_sharded_equals_unsharded;
          Alcotest.test_case "storm churn shard sweep" `Quick
            test_storm_churn_shard_sweep;
        ] );
    ]
