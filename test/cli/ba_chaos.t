The chaos campaign CLI documents itself:

  $ ../../bin/ba_chaos.exe --help=plain | head -12
  NAME
         ba_chaos - chaos-test window protocols against adversarial channel
         faults
  
  SYNOPSIS
         ba_chaos [OPTION]…
  
  DESCRIPTION
         Runs every (seed, fault class) pair through the experiment harness and
         checks safety (no duplicate, misordered or corrupted delivery —
         ever) and recovery (the transfer completes once scheduled faults
         quiesce). Fault schedules are a pure function of the seed; any failure



A deterministic CI-sized campaign: the robust protocols survive every fault
class, and the bounded go-back-N negative control breaks under reorder (its
failing seed and fault schedule are printed as the replay key):

  $ ../../bin/ba_chaos.exe --seeds 6 --messages 30
  blockack-multi:
  bursty-loss    6 runs  unsafe=0   incomplete=0   ok
  duplication    6 runs  unsafe=0   incomplete=0   ok
  corruption     6 runs  unsafe=0   incomplete=0   ok
  outage         6 runs  unsafe=0   incomplete=0   ok
  reorder        6 runs  unsafe=0   incomplete=0   ok
  crash          6 runs  unsafe=0   incomplete=0   ok
    recovery: restarts=1 rounds=2 resync-ticks=100 mean/100 max retx=560B
  overload       6 runs  unsafe=0   incomplete=0   ok
  storm          6 runs  unsafe=0   incomplete=0   ok
    recovery: restarts=8 rounds=24 resync-ticks=650 mean/4180 max retx=11440B
  
  selective-repeat:
  bursty-loss    6 runs  unsafe=0   incomplete=0   ok
  duplication    6 runs  unsafe=0   incomplete=0   ok
  corruption     6 runs  unsafe=0   incomplete=0   ok
  outage         6 runs  unsafe=0   incomplete=0   ok
  reorder        6 runs  unsafe=0   incomplete=0   ok
  crash        skipped (protocol not crash-tolerant)
  overload       6 runs  unsafe=0   incomplete=0   ok
  storm        skipped (protocol not crash-tolerant)
  
  demonstrated: bounded go-back-N misbehaves under reorder
    seed=1 fault=reorder
    data: spike(0.30,+350)
    ack:  spike(0.15,+250)
    go-back-n: STUCK in 1600000 ticks — 12/30 delivered (dup=0 ooo=1 bad=0), data sent=46 dropped=0 reord=12, acks=34 dropped=0, retx=16, goodput=0.007/ktick, ack-ovh=0.3542, eff=0.261



A single fault class can be selected, and the demonstration skipped:

  $ ../../bin/ba_chaos.exe --seeds 3 --messages 20 --classes duplication --protocol blockack --no-demo
  blockack-multi:
  duplication    3 runs  unsafe=0   incomplete=0   ok
  


The --protocol filter resolves through the shared registry: unknown
names get the registry's canonical error, and known-but-unaudited
protocols are rejected with the robust set:

  $ ../../bin/ba_chaos.exe --protocol no-such-protocol
  ba_chaos: unknown protocol "no-such-protocol" (expected one of: blockack-simple, blockack-multi, blockack-reuse, go-back-n, selective-repeat, stenning, alternating-bit)
  [2]

  $ ../../bin/ba_chaos.exe --protocol gbn
  ba_chaos: "gbn" is not in the audited robust set (expected one of: blockack-multi, selective-repeat)
  [2]



Campaign cells (seed x fault class) are independent simulations, so
--jobs farms them to worker domains. Reports are assembled in seed
order either way: the parallel run is byte-identical to the
sequential one, replay keys included:

  $ ../../bin/ba_chaos.exe --seeds 6 --messages 30 --jobs 1 > jobs1.out
  $ ../../bin/ba_chaos.exe --seeds 6 --messages 30 --jobs 4 > jobs4.out
  $ cmp jobs1.out jobs4.out && echo identical
  identical

--jobs rejects non-positive values, on the flag and the BA_JOBS default:

  $ ../../bin/ba_chaos.exe --jobs 0
  ba_chaos: option '--jobs': jobs must be a positive integer (got "0")
  Usage: ba_chaos [OPTION]…
  Try 'ba_chaos --help' for more information.
  [124]

  $ BA_JOBS=-2 ../../bin/ba_chaos.exe --seeds 1
  ba_chaos: environment variable 'BA_JOBS': jobs must be a positive integer
            (got "-2")
  Usage: ba_chaos [OPTION]…
  Try 'ba_chaos --help' for more information.
  [124]



The crash fault class schedules endpoint crash-restarts (a process
fault: both channel plans stay empty) and reports the recovery cost —
restarts, REQ/POS/FIN handshake frames, restart-to-recovery time and
retransmitted payload bytes. Crash schedules are a pure function of
the seed like every other class, so the sweep is byte-identical at any
job count:

  $ ../../bin/ba_chaos.exe --seeds 6 --messages 60 --classes crash --protocol blockack --no-demo
  blockack-multi:
  crash          6 runs  unsafe=0   incomplete=0   ok
    recovery: restarts=5 rounds=12 resync-ticks=120 mean/150 max retx=1760B
  

  $ ../../bin/ba_chaos.exe --seeds 6 --messages 60 --classes crash --protocol blockack --no-demo --jobs 1 > crash1.out
  $ ../../bin/ba_chaos.exe --seeds 6 --messages 60 --classes crash --protocol blockack --no-demo --jobs 4 > crash4.out
  $ cmp crash1.out crash4.out && echo identical
  identical

--replay re-runs one campaign cell from a failure's replay key; the
fault schedule is derived from the seed, so the cell is reproduced
exactly. Replaying the crash class against a protocol without the
crash-restart lifecycle is rejected:

  $ ../../bin/ba_chaos.exe --replay "seed=3 fault=crash" --messages 60
  replay: seed=3 fault=crash protocol=blockack-multi — clean

  $ ../../bin/ba_chaos.exe --replay "seed=7 fault=reorder" --protocol go-back-n --messages 30
  replayed failure:
  seed=7 fault=reorder
  data: spike(0.30,+350)
  ack:  spike(0.15,+250)
  go-back-n: STUCK in 1600000 ticks — 16/30 delivered (dup=0 ooo=0 bad=0), data sent=110 dropped=0 reord=31, acks=99 dropped=0, retx=80, goodput=0.010/ktick, ack-ovh=0.7734, eff=0.145
  [1]

  $ ../../bin/ba_chaos.exe --replay "seed=3 fault=crash" --protocol selective-repeat
  ba_chaos: selective-repeat does not implement the crash-restart lifecycle
  [2]

The storm class composes all three adversaries — the crash schedule,
the overload squeeze and a bursty channel — in one run, still keyed by
the seed alone: one replay key reproduces the whole composition. Like
crash, it requires the crash-restart lifecycle:

  $ ../../bin/ba_chaos.exe --replay "seed=3 fault=storm" --messages 60
  replay: seed=3 fault=storm protocol=blockack-multi — clean

  $ ../../bin/ba_chaos.exe --replay "seed=3 fault=storm" --protocol selective-repeat
  ba_chaos: selective-repeat does not implement the crash-restart lifecycle
  [2]
