The long-horizon overload soak: each round doubles the offered load
with a surge of late-starting flows under a fabric memory budget and an
armed watchdog, and stalls one surge flow's receiver so the full
escalation — resync, quarantine, probation release, recovery — runs.
Rounds are independent simulations collected in submission order, so
the report is byte-identical at any --jobs:

  $ ../../bin/ba_net.exe --soak 3 --messages 20 -c 2 --loss 0.02 --jobs 1 > soak-j1.out
  $ ../../bin/ba_net.exe --soak 3 --messages 20 -c 2 --loss 0.02 --jobs 4 > soak-j4.out
  $ cmp soak-j1.out soak-j4.out && echo identical
  identical

Every round holds the memory budget, quarantines the stalled flow once,
recovers it through the resync handshake and finishes clean. Latency
telemetry comes from a constant-space quantile sketch (the byte size is
fixed no matter how many rounds run), and the run ends with a
machine-checkable verdict line:

  $ cat soak-j1.out
  round  seed  completed  admitted  departed  clamp  mem-peak  quarantines  resyncs  recovery  verdict
  -----  ----  ---------  --------  --------  -----  --------  -----------  -------  --------  -------
      0    42  yes        4/4              0      6       544            1        2      6912  ok     
      1    43  yes        4/4              0      6       384            1        2      7146  ok     
      2    44  yes        4/4              0      6       384            1        2      6910  ok     
  
  soak: 3 rounds, budget=1536B, peak=544B (under budget), quarantines=3, resyncs=6, worst post-surge recovery=7146 ticks
  telemetry: latency n=240 p50=54 p90=380 p99=6554 sketch=1088B
  soak-verdict: rounds=3 safety=pass recovery=pass goodput-ratio=- goodput-floor=- mem-peak=544B budget=1536B sketch-nodes=64->64 result=PASS


Churn (--churn N) adds N departing/returning flow pairs per round, and
--fault storm composes a crash plan, an overload squeeze and bursty
channel plans on top. Departing flows release their budget reservation
live; the verdict line checks that post-churn goodput (the returning
cohort) holds within the floor of the pre-churn baseline and that the
sketch node count is flat from round 10 — O(1) telemetry memory over an
unbounded horizon. The churning report is byte-identical at any --jobs:

  $ ../../bin/ba_net.exe --soak 12 --messages 20 -c 2 --loss 0.02 --churn 2 --fault storm --jobs 1 > churn-j1.out
  $ ../../bin/ba_net.exe --soak 12 --messages 20 -c 2 --loss 0.02 --churn 2 --fault storm --jobs 4 > churn-j4.out
  $ cmp churn-j1.out churn-j4.out && echo identical
  identical
  $ tail -n 3 churn-j1.out
  soak: 12 rounds, budget=3072B, peak=1568B (under budget), quarantines=12, resyncs=33, worst post-surge recovery=8380 ticks
  telemetry: latency n=2255 p50=347 p90=1409 p99=6851 sketch=1088B
  soak-verdict: rounds=12 safety=pass recovery=pass goodput-ratio=1.65 goodput-floor=0.50 mem-peak=1568B budget=3072B sketch-nodes=64->64 result=PASS

An impossible budget is refused outright rather than thrashing:

  $ ../../bin/ba_net.exe --soak 1 --messages 10 -c 1 --budget 10
  ba_net: internal error, uncaught exception:
          Invalid_argument("Fabric.run: memory_budget admits no flow")
          
  [125]


Soak-only flags are rejected outside --soak, and the schedule knobs
validate their ranges:

  $ ../../bin/ba_net.exe --budget 100
  ba_net: --budget requires --soak
  [2]
  $ ../../bin/ba_net.exe --surge-at 100
  ba_net: --surge-at requires --soak
  [2]
  $ ../../bin/ba_net.exe --soak 1 --surge-at 0
  ba_net: --surge-at must be positive (got 0)
  [2]
  $ ../../bin/ba_net.exe --soak 1 --stall-for=-5
  ba_net: --stall-for must be positive (got -5)
  [2]
  $ ../../bin/ba_net.exe --soak 1 --churn=-1
  ba_net: --churn must be >= 0 (got -1)
  [2]
  $ ../../bin/ba_net.exe --soak 1 --fault hurricane
  ba_net: unknown fault class "hurricane"
  [2]
