The long-horizon overload soak: each round doubles the offered load
with a surge of late-starting flows under a fabric memory budget and an
armed watchdog, and stalls one surge flow's receiver so the full
escalation — resync, quarantine, probation release, recovery — runs.
Rounds are independent simulations collected in submission order, so
the report is byte-identical at any --jobs:

  $ ../../bin/ba_net.exe --soak 3 --messages 20 -c 2 --loss 0.02 --jobs 1 > soak-j1.out
  $ ../../bin/ba_net.exe --soak 3 --messages 20 -c 2 --loss 0.02 --jobs 4 > soak-j4.out
  $ cmp soak-j1.out soak-j4.out && echo identical
  identical

Every round holds the memory budget, quarantines the stalled flow once,
recovers it through the resync handshake and finishes clean:

  $ cat soak-j1.out
  round  seed  completed  admitted  clamp  mem-peak  quarantines  resyncs  recovery  verdict
  -----  ----  ---------  --------  -----  --------  -----------  -------  --------  -------
      0    42  yes        4/4           6       544            1        2      6912  ok     
      1    43  yes        4/4           6       384            1        2      7146  ok     
      2    44  yes        4/4           6       384            1        2      6910  ok     
  
  soak: 3 rounds, budget=1536B, peak=544B (under budget), quarantines=3, resyncs=6, worst post-surge recovery=7146 ticks


An impossible budget is refused outright rather than thrashing:

  $ ../../bin/ba_net.exe --soak 1 --messages 10 -c 1 --budget 10
  ba_net: internal error, uncaught exception:
          Invalid_argument("Fabric.run: memory_budget admits no flow")
          
  [125]
