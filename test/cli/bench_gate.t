The data-path performance gate (`bench --check`): block acknowledgement
must not be slower than the slowest baseline transfer on the same lossy
channel, and the steady-state allocation slope — marginal heap bytes per
additional frame — must stay within budget. The measured times (and
which baseline happens to be slowest) vary by machine, so they are
normalised away; the verdict and the exit status must not vary.

  $ ../../bench/main.exe --check > gate.out 2>&1; echo "exit=$?"
  exit=0
  $ sed -e 's/ [0-9][0-9]* us/ N us/g' -e 's/slope [0-9][0-9]* B/slope N B/' \
  >     -e 's/(F[0-9]*\/transfer-[a-z-]*5pc N us)/(SLOWEST-BASELINE N us)/' gate.out
  check: blockack-5pc N us <= slowest baseline (SLOWEST-BASELINE N us)
  check: alloc slope N B/frame within budget (512 B/frame)
  check: OK
