The data-path performance gate (`bench --check`): block acknowledgement
must not be slower than the slowest baseline transfer on the same lossy
channel (within a 1.5x measurement margin: blockack runs at parity with
the slowest baseline, so only a multiple — a real data-path regression
— may fail the build), the steady-state allocation slope — marginal heap bytes
per additional frame — must stay within budget, and the sharded fabric
must hold its scale envelope at 100k flows (flows/sec floor, per-flow
state ceiling), and the real transport must carry a blockack transfer
over loopback UDP through the 5%-baseline impairment shim with zero
safety violations in bounded wall time. The measured times (and which
baseline happens to be slowest) vary by machine, so they are normalised
away; the verdict and the exit status must not vary.

  $ ../../bench/main.exe --check > gate.out 2>&1; echo "exit=$?"
  exit=0
  $ sed -e 's/ [0-9][0-9]* us/ N us/g' -e 's/slope [0-9][0-9]* B/slope N B/' \
  >     -e 's/flows [0-9][0-9]* flows\/sec/flows N flows\/sec/' \
  >     -e 's/state [0-9][0-9]* B/state N B/' \
  >     -e 's/wall [0-9.]*s/wall Ns/' \
  >     -e 's/(F[0-9]*\/transfer-[a-z-]*5pc N us,/(SLOWEST-BASELINE N us,/' gate.out
  check: blockack-5pc N us within slowest baseline (SLOWEST-BASELINE N us, 1.5x margin)
  check: alloc slope N B/frame within budget (512 B/frame)
  check: scale 100k flows N flows/sec >= floor (5000 flows/sec)
  check: scale state N B/flow within ceiling (8192 B/flow)
  check: net loopback 150/150 clean under impairment (dup=0 ooo=0 corrupt=0 digest ok, wall Ns within 30s cap)
  check: OK
