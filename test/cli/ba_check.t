Exhaustive verification of the Section II protocol (tiny instance):

  $ ../../bin/ba_check.exe --spec section2 -w 1 --limit 2
  spec: blockack-II(w=1,limit=2)
  states: 17  transitions: 22  max depth: 11
  terminal states: 1  deadlocks: 0  capped: false
  progress: every state can complete loss-free
  invariant: HOLDS at every reachable state
  

The Section V protocol with too small a modulus: the checker exits 1 and
prints the shortest counterexample ending in a reconstruction error:

  $ ../../bin/ba_check.exe --spec section5 -w 2 -n 3 --limit 6
  spec: blockack-V(w=2,n=3,limit=6)
  states: 59  transitions: 100  max depth: 9
  terminal states: 0  deadlocks: 0  capped: false
  progress: not checked
  invariant: VIOLATED — reconstruction: data wire=0 decodes to 0, truth 3 (nr=2)
  counterexample (10 steps):
    <init>                       S{na=0 ns=0 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={} CRS={}
    send(0|w0)                   S{na=0 ns=1 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={0|w0} CRS={}
    send(1|w1)                   S{na=0 ns=2 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={0|w0, 1|w1} CRS={}
    recv_data(w0->0)             S{na=0 ns=2 ackd={}} R{nr=0 vr=0 rcvd={0}} CSR={1|w1} CRS={}
    recv_data(w1->1)             S{na=0 ns=2 ackd={}} R{nr=0 vr=0 rcvd={0,1}} CSR={} CRS={}
    advance_vr(0)                S{na=0 ns=2 ackd={}} R{nr=0 vr=1 rcvd={0,1}} CSR={} CRS={}
    advance_vr(1)                S{na=0 ns=2 ackd={}} R{nr=0 vr=2 rcvd={0,1}} CSR={} CRS={}
    send_ack(0,1)                S{na=0 ns=2 ackd={}} R{nr=2 vr=2 rcvd={0,1}} CSR={} CRS={(0,1)|w(0,1)}
    recv_ack(w0,w1->0,1)         S{na=2 ns=2 ackd={0,1}} R{nr=2 vr=2 rcvd={0,1}} CSR={} CRS={}
    send(2|w2)                   S{na=2 ns=3 ackd={0,1}} R{nr=2 vr=2 rcvd={0,1}} CSR={2|w2} CRS={}
    send(3|w0)                   S{na=2 ns=4 ackd={0,1}} R{nr=2 vr=2 rcvd={0,1}} CSR={3|w0, 2|w2} CRS={}
  
  [1]

Bounded go-back-N under reorder: the checker finds the introduction's
scenario automatically:

  $ ../../bin/ba_check.exe --spec gbn -w 2 --limit 6 2>&1 | head -7
  spec: go-back-N-bounded(w=2,n=3,limit=6)
  states: 29  transitions: 44  max depth: 5
  terminal states: 0  deadlocks: 0  capped: false
  progress: not checked
  invariant: VIOLATED — sender decoded stale ack 0 as 3 and slid to na=4
  counterexample (6 steps):
    <init>                       S{na=0 ns=0} R{nr=0} CSR={} CRS={}

The crash-restart environment. Without incarnation epochs a restarted
receiver re-accepts the sender's retransmission of data it already
delivered — the checker finds the shortest duplicate-delivery trace:

  $ ../../bin/ba_check.exe --spec crash-naive -w 1 --limit 2 --victims receiver
  spec: blockack-crash-naive(w=1,n=2,limit=2,crashes<=1)
  states: 27  transitions: 39  max depth: 6
  terminal states: 0  deadlocks: 0  capped: false
  progress: not checked
  invariant: VIOLATED — duplicate delivery: value 0 handed to the application twice
  counterexample (7 steps):
    <init>                       S{bna=0 bns=0 ackd={} e0 | na=0 ns=0} R{bnr=0 bvr=0 rcvd={} e0 | nr=0 vr=0} del={} crashes=0 CSR={} CRS={}
    send(0|w0,e0)                S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=0 rcvd={} e0 | nr=0 vr=0} del={} crashes=0 CSR={0|w0|e0} CRS={}
    recv_data(w0,e0)             S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=0 rcvd={0} e0 | nr=0 vr=0} del={} crashes=0 CSR={} CRS={}
    deliver(0|w0)                S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=1 rcvd={} e0 | nr=0 vr=1} del={0} crashes=0 CSR={} CRS={}
    crash_receiver               S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=0 rcvd={} e0 | nr=0 vr=0} del={0} crashes=1 CSR={} CRS={}
    timeout->resend(w0,e0)       S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=0 rcvd={} e0 | nr=0 vr=0} del={0} crashes=1 CSR={0|w0|e0} CRS={}
    recv_data(w0,e0)             S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=0 rcvd={0} e0 | nr=0 vr=0} del={0} crashes=1 CSR={} CRS={}
    deliver(0|w0)                S{bna=0 bns=1 ackd={} e0 | na=0 ns=1} R{bnr=0 bvr=1 rcvd={} e0 | nr=0 vr=1} del={0} crashes=1 CSR={} CRS={}
  
  [1]

A crashed sender shows the other symptom — it restarts its numbering
inside the old incarnation's sequence space, so the receiver hands the
application a payload it never submitted at that position:

  $ ../../bin/ba_check.exe --spec crash-naive -w 1 --limit 2 --victims sender 2>&1 | sed -n 5p
  invariant: VIOLATED — phantom delivery: a value the application never submitted was delivered

With incarnation epochs and the REQ/POS/FIN resync handshake the same
environment is safe in every reachable state and progress still holds
from every state — the self-stabilization pair:

  $ ../../bin/ba_check.exe --spec crash-epochs -w 1 --limit 2
  spec: blockack-crash-epochs(w=1,n=2,limit=2,crashes<=1)
  states: 282  transitions: 817  max depth: 14
  terminal states: 22  deadlocks: 0  capped: false
  progress: every state can complete loss-free
  invariant: HOLDS at every reachable state
  

The buffer-pressure environment: a receiver that may drop any buffered
out-of-order frame for "buffer full" (the worst case over every finite
reassembly budget and both of Jain's drop policies). Safety and
loss-free progress both hold — bounded buffers cost retransmissions,
never correctness:

  $ ../../bin/ba_check.exe --spec pressure -w 2 --limit 3
  spec: blockack-pressure(w=2,limit=3)
  states: 101  transitions: 255  max depth: 16
  terminal states: 1  deadlocks: 0  capped: false
  progress: every state can complete loss-free
  invariant: HOLDS at every reachable state
  

The naive ack-before-buffer variant — acknowledge the frame, then
discover the buffer is full and discard it — is caught mechanically:
the singleton ack for the never-buffered slot violates assertion 8's
in-transit-ack clause within three steps:

  $ ../../bin/ba_check.exe --spec pressure-naive -w 2 --limit 2
  spec: blockack-pressure(w=2,limit=2,naive)
  states: 10  transitions: 9  max depth: 2
  terminal states: 0  deadlocks: 0  capped: false
  progress: not checked
  invariant: VIOLATED — 8: in-transit ack covers 1 but not (m<nr && !ackd)
  counterexample (3 steps):
    <init>                       S{na=0 ns=0 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={} CRS={}
    send(0)                      S{na=0 ns=1 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={0} CRS={}
    send(1)                      S{na=0 ns=2 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={0, 1} CRS={}
    ack_drop(1)                  S{na=0 ns=2 ackd={}} R{nr=0 vr=0 rcvd={}} CSR={0} CRS={(1,1)}
  
  [1]
