Real loopback UDP, impaired: ba_serve and ba_client run a blockack
transfer over actual sockets, with a seeded shim injecting bursty loss
(~5% baseline), duplication and delay-spike reordering on both
directions. Every payload arrives exactly once, in order, and the
delivered stream's digest matches the workload.

  $ PLAN='ge(0.02->0.3,l=0.05/0.3)+dup(0.03x2)+spike(0.03,+30)'
  $ timeout 60 ../../bin/ba_serve.exe --listen 127.0.0.1:0 --port-file port \
  >   --messages 200 --impair "$PLAN" --impair-seed 7 --deadline 45 \
  >   >serve.out 2>serve.log &
  $ for i in $(seq 150); do [ -s port ] && break; sleep 0.1; done
  $ timeout 60 ../../bin/ba_client.exe --connect 127.0.0.1:$(cat port) \
  >   --messages 200 --impair "$PLAN" --impair-seed 8 --deadline 45 >client.out 2>client.log
  $ wait
  $ cat serve.out
  ba_serve: blockack-multi 200 messages
  resumed: no
  delivered: 200/200 (this run 200) duplicates=0 misordered=0 corrupted=0
  digest: ok
  completed: true
  $ cat client.out
  ba_client: blockack-multi 200 messages
  pulled: 200 acked: 200
  workload digest: 214223995441080080
  completed: true

The shim really did impair the path (loss verdicts fired on the client's
outgoing data):

  $ grep -o 'dropped=[0-9]*' client.log | head -1 | awk -F= '{print ($2 > 0) ? "impaired" : "NOT IMPAIRED"}'
  impaired

Replay: the same seeds give byte-identical stdout summaries, real
sockets and wall-clock timers notwithstanding — the summaries contain
only timing-free fields.

  $ timeout 60 ../../bin/ba_serve.exe --listen 127.0.0.1:0 --port-file port2 \
  >   --messages 200 --impair "$PLAN" --impair-seed 7 --deadline 45 \
  >   >serve2.out 2>/dev/null &
  $ for i in $(seq 150); do [ -s port2 ] && break; sleep 0.1; done
  $ timeout 60 ../../bin/ba_client.exe --connect 127.0.0.1:$(cat port2) \
  >   --messages 200 --impair "$PLAN" --impair-seed 8 --deadline 45 >client2.out 2>/dev/null
  $ wait
  $ cmp serve.out serve2.out && cmp client.out client2.out && echo replay-identical
  replay-identical

A baseline protocol runs over the same transport (the backend is
protocol-agnostic behind the registry):

  $ timeout 60 ../../bin/ba_serve.exe --listen 127.0.0.1:0 --port-file port3 \
  >   -p go-back-n --messages 50 --deadline 45 >serve3.out 2>/dev/null &
  $ for i in $(seq 150); do [ -s port3 ] && break; sleep 0.1; done
  $ timeout 60 ../../bin/ba_client.exe --connect 127.0.0.1:$(cat port3) \
  >   -p go-back-n --messages 50 --deadline 45 2>/dev/null
  ba_client: go-back-n 50 messages
  pulled: 50 acked: 50
  workload digest: 3864752326562296387
  completed: true
  $ wait

A malformed fault plan is rejected up front, naming the offending token
rather than the whole plan:

  $ ../../bin/ba_client.exe --connect 127.0.0.1:1 --impair 'out[10,5)' 2>&1 | head -2
  ba_client: option '--impair': bad fault token "out[10,5)": Fault_plan: outage
             needs 0 <= from_tick < until_tick
  $ ../../bin/ba_client.exe --connect 127.0.0.1:1 --impair 'corr(0.1)+gremlins' 2>&1 | head -2
  ba_client: option '--impair': unrecognized fault token "gremlins" in plan
             "corr(0.1)+gremlins"
