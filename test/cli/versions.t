Every binary reports the same version, sourced from the one constant in
Ba_cli (so a release bumps all seven in one place):

  $ ../../bin/ba_sim.exe --version
  0.5.0
  $ ../../bin/ba_net.exe --version
  0.5.0
  $ ../../bin/ba_chaos.exe --version
  0.5.0
  $ ../../bin/ba_check.exe --version
  0.5.0
  $ ../../bin/ba_diagram.exe --version
  0.5.0
  $ ../../bin/ba_serve.exe --version
  0.5.0
  $ ../../bin/ba_client.exe --version
  0.5.0
