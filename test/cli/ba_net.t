A deterministic mixed-protocol fabric: four flows share one bottlenecked
data link, each gets a per-flow verdict and the run reports aggregate
goodput plus Jain's fairness index:

  $ ../../bin/ba_net.exe --mix blockack-multi:2,go-back-n:1,selective-repeat:1 -m 15 --capacity 2:32
  flow  protocol          delivered  retx  ticks  goodput  p50  p99  verdict
  ----  ----------------  ---------  ----  -----  -------  ---  ---  -------
     0  blockack-multi    15/15         0    216   69.444   52   66  ok     
     1  blockack-multi    15/15         0    232   64.655   68   82  ok     
     2  go-back-n         15/15         0    248   60.484   84   98  ok     
     3  selective-repeat  15/15         0    264   56.818  100  114  ok     
  
  aggregate: 4 flows, completed in 264 ticks, goodput=227.273/ktick, jain=0.994
  shared data link: sent=60 dropped=0 queue_dropped=0 reordered=0
  shared ack link:  sent=60 dropped=0


Contention and loss on the shared link show up in per-flow drops and a
lower fairness index, and the run stays correct (exit 0):

  $ ../../bin/ba_net.exe -c 3 -m 20 --capacity 4:16 --loss 0.02 -j 10
  flow  protocol        delivered  retx  ticks  goodput  p50  p99  verdict
  ----  --------------  ---------  ----  -----  -------  ---  ---  -------
     0  blockack-multi  20/20         0    351   56.980   64   85  ok     
     1  blockack-multi  20/20         8    672   29.762  115  348  ok     
     2  blockack-multi  20/20         7    811   24.661   87  363  ok     
  
  aggregate: 3 flows, completed in 811 ticks, goodput=73.983/ktick, jain=0.873
  shared data link: sent=75 dropped=2 queue_dropped=7 reordered=7
  shared ack link:  sent=53 dropped=0


The protocol mix is resolved through the shared registry, so an unknown
name fails with the registry's canonical error:

  $ ../../bin/ba_net.exe --mix blockack:2,junk:1
  ba_net: option '--mix': unknown protocol "junk" (expected one of:
          blockack-simple, blockack-multi, blockack-reuse, go-back-n,
          selective-repeat, stenning, alternating-bit)
  Usage: ba_net [OPTION]…
  Try 'ba_net --help' for more information.
  [124]

  $ ../../bin/ba_net.exe --list-protocols
  blockack-simple    block acknowledgment, single timeout (paper, Section II)
  blockack-multi     block acknowledgment, per-message timers (paper, Section IV) (alias: blockack)
  blockack-reuse     block acknowledgment with slot reuse, lead 2w (paper, Section VI)
  go-back-n          cumulative-ack go-back-N (classic baseline; unsafe when bounded + reordered) (alias: gbn)
  selective-repeat   per-message-ack selective repeat (robust baseline) (alias: sr)
  stenning           Stenning timer-quarantined slot reuse (introduction's contrast)
  alternating-bit    alternating-bit stop-and-wait (window 1) (alias: abp)


--sweep turns one invocation into an S1-style scaling grid: one cell
per (connection count, protocol in the mix), each an independent
fabric run. Cells parallelise with --jobs and the table is
byte-identical at any job count:

  $ ../../bin/ba_net.exe --sweep 1,2,4 --messages 10 --mix blockack-multi:1,go-back-n:1 --jobs 1 > sweep1.out
  $ ../../bin/ba_net.exe --sweep 1,2,4 --messages 10 --mix blockack-multi:1,go-back-n:1 --jobs 4 > sweep4.out
  $ cmp sweep1.out sweep4.out && cat sweep4.out
  conns  protocol        completed  goodput   jain  qdrops  ticks
  -----  --------------  ---------  -------  -----  ------  -----
      1  blockack-multi  yes         48.544  1.000       0    206
      1  go-back-n       yes         48.544  1.000       0    206
      2  blockack-multi  yes         90.090  0.999       0    222
      2  go-back-n       yes         90.090  0.999       0    222
      4  blockack-multi  yes        157.480  0.994       0    254
      4  go-back-n       yes        157.480  0.994       0    254

  $ ../../bin/ba_net.exe --sweep 0,2
  ba_net: --sweep counts must be positive (got 0)
  [2]


--scale runs the cell-partitioned fabric (Ba_proto.Shard): flows are
dealt into fixed-size cells, the shared bottleneck becomes per-cell
capacity leases reconciled at epoch barriers, and stdout is a pure
function of the model parameters. Machine-dependent figures (wall
clock, flows/sec, heap bytes per flow) go to stderr, discarded here:

  $ ../../bin/ba_net.exe --scale 60 --cell 16 --messages 4 --capacity 1:512 \
  >     --mix blockack-multi:2,go-back-n:1,selective-repeat:1 2>/dev/null | tee scale.ref
  flows=60 cells=4 messages=240
  delivered=240 duplicates=0 misordered=0 corrupted=0 completed-flows=60
  departed=0 refused=0 clamped-cells=0
  data-sent=240 acks-sent=240 retransmissions=0 pressure-drops=0
  lease-drops=0 lease-rebalances=0
  quarantine-events=0 watchdog-resyncs=0 quarantined=0
  mem-peak=0B ticks=340 epochs=1 completed=true goodput=705.88/ktick
  latency: p50=152 p99=280 max=290 (n=240)
  scale-verdict: flows=60 safety=pass completion=pass result=PASS

Shards and jobs are scheduling knobs, never semantics: any --shards and
any --jobs reproduce the reference byte for byte — including an absurd
BA_JOBS, which is clamped (to 4x the machine's recommended domain
count) instead of spawning 100000 domains:

  $ ../../bin/ba_net.exe --scale 60 --cell 16 --messages 4 --capacity 1:512 \
  >     --mix blockack-multi:2,go-back-n:1,selective-repeat:1 --jobs 4 --shards 3 2>/dev/null | cmp - scale.ref
  $ ../../bin/ba_net.exe --scale 60 --cell 16 --messages 4 --capacity 1:512 \
  >     --mix blockack-multi:2,go-back-n:1,selective-repeat:1 --jobs 1 --shards 7 2>/dev/null | cmp - scale.ref
  $ BA_JOBS=100000 ../../bin/ba_net.exe --scale 60 --cell 16 --messages 4 --capacity 1:512 \
  >     --mix blockack-multi:2,go-back-n:1,selective-repeat:1 2>/dev/null | cmp - scale.ref

The sharding knobs belong to --scale and are rejected elsewhere, like
the soak-only flags:

  $ ../../bin/ba_net.exe --shards 2 -m 5
  ba_net: --shards requires --scale
  [2]
  $ ../../bin/ba_net.exe --cell 64 -m 5
  ba_net: --cell requires --scale
  [2]
  $ ../../bin/ba_net.exe --scale 0
  ba_net: --scale flows must be positive (got 0)
  [2]
