A small deterministic lossless transfer:

  $ ../../bin/ba_sim.exe -p blockack-multi -m 50 --delay 50 -w 4
  seed 42: blockack-multi: completed in 1300 ticks — 50/50 delivered (dup=0 ooo=0 bad=0), data sent=50 dropped=0 reord=0, acks=50 dropped=0, retx=0, goodput=38.462/ktick, ack-ovh=0.2500, eff=1.000
    latency: n=50 mean=50.000 sd=0.000 min=50.000 p50=50.000 p90=50.000 p99=50.000 max=50.000

Exit status is 1 when a run is incorrect — bounded go-back-N over a
reordering link wedges or corrupts (output elided, status checked):

  $ ../../bin/ba_sim.exe -p go-back-n -m 100 -j 60 -l 0.05 -n 17 -w 16 --rto 400 >/dev/null 2>&1
  [1]

Protocol names come from the shared registry; the listing shows every
canonical name with its aliases:

  $ ../../bin/ba_sim.exe --list-protocols
  blockack-simple    block acknowledgment, single timeout (paper, Section II)
  blockack-multi     block acknowledgment, per-message timers (paper, Section IV) (alias: blockack)
  blockack-reuse     block acknowledgment with slot reuse, lead 2w (paper, Section VI)
  go-back-n          cumulative-ack go-back-N (classic baseline; unsafe when bounded + reordered) (alias: gbn)
  selective-repeat   per-message-ack selective repeat (robust baseline) (alias: sr)
  stenning           Stenning timer-quarantined slot reuse (introduction's contrast)
  alternating-bit    alternating-bit stop-and-wait (window 1) (alias: abp)

An unknown protocol name gets the registry's canonical error:

  $ ../../bin/ba_sim.exe -p no-such-protocol
  ba_sim: option '-p': unknown protocol "no-such-protocol" (expected one of:
          blockack-simple, blockack-multi, blockack-reuse, go-back-n,
          selective-repeat, stenning, alternating-bit)
  Usage: ba_sim [OPTION]…
  Try 'ba_sim --help' for more information.
  [124]

The time-sequence diagram tool renders the F3 recovery scenario:

  $ ../../bin/ba_diagram.exe -m 2 --kill-first-ack --simple
      tick | sender                      | receiver
  ---------+-----------------------------+-----------------------------
         0 | DATA 0 ->                   | 
         0 | DATA 1 ->                   | 
        50 |                             | -> DATA 0
        50 |                             | -> DATA 1
        70 |                             | <- ACK (0,1)
        70 |                             | <- ACK (0,1)  ** KILLED **
        70 |                             | deliver "m:0:jh90"
        70 |                             | deliver "m:1:lpht"
       220 | DATA 0 ->                   | 
       270 |                             | -> DATA 0
       270 |                             | <- ACK (0,0)
       320 | ACK (0,0) <-                | 
       440 | DATA 1 ->                   | 
       490 |                             | -> DATA 1
       490 |                             | <- ACK (1,1)
       540 | ACK (1,1) <-                | 
  transfer of 2 messages complete
