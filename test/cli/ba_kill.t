Peer death and recovery over real UDP: a ba_serve instance is SIGKILLed
mid-transfer (the deterministic --die-after hook fires after 100 of 300
deliveries, after persisting its durable state), then restarted on the
same port. The client detects the silence by wall-clock timeout, the
incarnation-epoch handshake re-establishes the position, and the
transfer completes with no duplicate delivery.

The first incarnation: dies by its own SIGKILL (exit 137), leaving
(epoch, position, digest) on disk.

  $ timeout 60 ../../bin/ba_serve.exe --listen 127.0.0.1:0 --port-file port \
  >   --messages 300 --state state --die-after 100 --deadline 45 \
  >   >serve1.out 2>/dev/null &
  $ for i in $(seq 150); do [ -s port ] && break; sleep 0.1; done
  $ timeout 90 ../../bin/ba_client.exe --connect 127.0.0.1:$(cat port) \
  >   --messages 300 --deadline 60 >client.out 2>client.log &
  $ wait %1
  Killed
  [137]
  $ awk '{print "epoch="$1, "position="$2}' state
  epoch=0 position=100

The second incarnation: binds the same port, restores from the state
file as epoch 1 at position 100, and serves the remaining 200 messages.
The client's summary shows a clean completion.

  $ timeout 60 ../../bin/ba_serve.exe --listen 127.0.0.1:$(cat port) \
  >   --messages 300 --state state --deadline 45 >serve2.out 2>serve2.log
  $ wait
  $ cat serve2.out
  ba_serve: blockack-multi 300 messages
  resumed: epoch 1 position 100
  delivered: 300/300 (this run 200) duplicates=0 misordered=0 corrupted=0
  digest: ok
  completed: true
  $ cat client.out
  ba_client: blockack-multi 300 messages
  pulled: 300 acked: 300
  workload digest: 993365756812875250
  completed: true

The client actually went through recovery — its sender resynchronised
at least once while the server was down:

  $ grep -o 'resync-rounds=[0-9]*' client.log | awk -F= '{print ($2 > 0) ? "resynced" : "NO RESYNC"}'
  resynced

The final state file records the second incarnation at the full
position:

  $ awk '{print "epoch="$1, "position="$2}' state
  epoch=1 position=300
