(* Overload-tolerance tests: bounded receiver/sender budgets, the
   watchdog state machine, fabric admission control under a memory
   budget, the overload chaos class, and the S2 surge acceptance
   scenario (budget held, quarantined flow recovers, bystander goodput
   barely degrades). *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Chaos = Ba_verify.Chaos
module Harness = Ba_proto.Harness
module Fabric = Ba_proto.Fabric
module Flow = Ba_proto.Flow
module Watchdog = Ba_proto.Watchdog
module Registry = Ba_registry.Registry
module Config = Ba_proto.Proto_config
module Engine = Ba_sim.Engine

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "registry is missing %S" name

let blockack = (entry "blockack-multi").Registry.protocol

(* ------------------------------------------------------------------ *)
(* Watchdog state machine *)

let wd_config =
  { Watchdog.check_interval = 100; stall_checks = 2; degraded_checks = 2; max_resyncs = 2;
    probation_checks = 4 }

let action = Alcotest.testable (Fmt.of_to_string (function
  | Watchdog.Nothing -> "nothing"
  | Watchdog.Resync -> "resync"
  | Watchdog.Quarantine -> "quarantine"
  | Watchdog.Release -> "release")) ( = )

let observe t ~delivered = Watchdog.observe t ~delivered ~completed:false

let test_watchdog_escalation () =
  let t = Watchdog.create wd_config in
  (* Silence escalates with hysteresis: two checks to leave Healthy, two
     more to act, each resync buying a fresh two-check grace period. *)
  check action "idle 1" Watchdog.Nothing (observe t ~delivered:0);
  check Alcotest.string "still healthy" "healthy" (Watchdog.state_name (Watchdog.state t));
  check action "idle 2 degrades" Watchdog.Nothing (observe t ~delivered:0);
  check Alcotest.string "degraded" "degraded" (Watchdog.state_name (Watchdog.state t));
  check action "idle 3" Watchdog.Nothing (observe t ~delivered:0);
  check action "idle 4 resyncs" Watchdog.Resync (observe t ~delivered:0);
  check Alcotest.string "stalled" "stalled" (Watchdog.state_name (Watchdog.state t));
  check action "grace check" Watchdog.Nothing (observe t ~delivered:0);
  check action "second resync" Watchdog.Resync (observe t ~delivered:0);
  check action "grace check" Watchdog.Nothing (observe t ~delivered:0);
  check action "resyncs exhausted: quarantine" Watchdog.Quarantine (observe t ~delivered:0);
  check Alcotest.string "quarantined" "quarantined" (Watchdog.state_name (Watchdog.state t));
  check Alcotest.int "one quarantine event" 1 (Watchdog.quarantine_events t);
  check Alcotest.int "two resync events" 2 (Watchdog.resync_events t)

let test_watchdog_progress_resets () =
  let t = Watchdog.create wd_config in
  ignore (observe t ~delivered:0);
  ignore (observe t ~delivered:0);
  check Alcotest.string "degraded" "degraded" (Watchdog.state_name (Watchdog.state t));
  check action "progress heals" Watchdog.Nothing (observe t ~delivered:5);
  check Alcotest.string "healthy again" "healthy" (Watchdog.state_name (Watchdog.state t));
  (* The idle counter restarted: it takes the full escalation again. *)
  check action "idle 1" Watchdog.Nothing (observe t ~delivered:5);
  check action "idle 2" Watchdog.Nothing (observe t ~delivered:5);
  check action "idle 3" Watchdog.Nothing (observe t ~delivered:5);
  check action "idle 4 resyncs" Watchdog.Resync (observe t ~delivered:5)

let test_watchdog_probation_and_release () =
  let t = Watchdog.create wd_config in
  for _ = 1 to 8 do ignore (observe t ~delivered:0) done;
  check Alcotest.string "quarantined" "quarantined" (Watchdog.state_name (Watchdog.state t));
  (* Progress cannot lift quarantine — only probation can (that is the
     isolation guarantee for the other n-1 flows). *)
  check action "probation 1" Watchdog.Nothing (observe t ~delivered:50);
  check Alcotest.string "still quarantined" "quarantined"
    (Watchdog.state_name (Watchdog.state t));
  check action "probation 2" Watchdog.Nothing (observe t ~delivered:50);
  check action "probation 3" Watchdog.Nothing (observe t ~delivered:50);
  check action "probation over: release" Watchdog.Release (observe t ~delivered:50);
  check Alcotest.string "released on parole" "degraded"
    (Watchdog.state_name (Watchdog.state t));
  (* Parole: one escalation (not a full quarantine cycle) away from a
     resync, with the resync allowance reset. *)
  check action "parole check" Watchdog.Nothing (observe t ~delivered:50);
  check action "re-stall resyncs again" Watchdog.Resync (observe t ~delivered:50)

let test_watchdog_completed_is_healthy_forever () =
  let t = Watchdog.create wd_config in
  for _ = 1 to 8 do ignore (observe t ~delivered:0) done;
  check action "completion overrides quarantine" Watchdog.Nothing
    (Watchdog.observe t ~delivered:60 ~completed:true);
  check Alcotest.string "healthy" "healthy" (Watchdog.state_name (Watchdog.state t))

let test_watchdog_config_validated () =
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Watchdog: check_interval must be positive") (fun () ->
      ignore (Watchdog.create { wd_config with Watchdog.check_interval = 0 }));
  Alcotest.check_raises "bad probation"
    (Invalid_argument "Watchdog: probation_checks must be >= 1") (fun () ->
      ignore (Watchdog.create { wd_config with Watchdog.probation_checks = 0 }))

(* ------------------------------------------------------------------ *)
(* Fabric admission control *)

(* Four flows, window 8, 32-byte payloads: 2*8*32 = 512 bytes of
   worst-case buffering each, 2048 total. *)
let admission_specs () =
  let config = Registry.config ~window:8 ~rto:600 (entry "blockack-multi") () in
  List.init 4 (fun _ -> Fabric.spec ~config ~messages:20 ~payload_size:32 blockack)

let test_admission_unclamped_when_budget_allows () =
  let r = Fabric.run ~memory_budget:2048 (admission_specs ()) in
  check Alcotest.int "all admitted" 4 r.Fabric.admitted;
  check Alcotest.int "none refused" 0 r.Fabric.refused;
  check (Alcotest.option Alcotest.int) "no clamp" None r.Fabric.clamped_window;
  check Alcotest.bool "completed" true r.Fabric.completed

let test_admission_uniform_clamp () =
  (* 1024 bytes over 4 flows: 2*c*32*4 <= 1024 gives c = 4. *)
  let r = Fabric.run ~memory_budget:1024 (admission_specs ()) in
  check Alcotest.int "all admitted" 4 r.Fabric.admitted;
  check (Alcotest.option Alcotest.int) "uniform clamp" (Some 4) r.Fabric.clamped_window;
  check Alcotest.bool "completed under clamp" true r.Fabric.completed;
  check Alcotest.bool "correct under clamp" true
    (List.for_all Harness.correct r.Fabric.flows);
  check Alcotest.bool
    (Printf.sprintf "peak %d within budget" r.Fabric.mem_peak_bytes)
    true
    (r.Fabric.mem_peak_bytes <= 1024)

let test_admission_prefix_at_clamp_one () =
  (* 160 bytes: even clamp 1 costs 64 per flow, so only a 2-flow prefix
     fits; the rest are refused rather than everyone OOMing. *)
  let r = Fabric.run ~memory_budget:160 (admission_specs ()) in
  check Alcotest.int "prefix admitted" 2 r.Fabric.admitted;
  check Alcotest.int "rest refused" 2 r.Fabric.refused;
  check (Alcotest.option Alcotest.int) "clamp 1" (Some 1) r.Fabric.clamped_window;
  check Alcotest.int "result rows only for admitted flows" 2 (List.length r.Fabric.flows);
  check Alcotest.bool "admitted flows complete" true r.Fabric.completed

let test_admission_rejects_hopeless_budget () =
  Alcotest.check_raises "nothing fits"
    (Invalid_argument "Fabric.run: memory_budget admits no flow") (fun () ->
      ignore (Fabric.run ~memory_budget:63 (admission_specs ())))

(* ------------------------------------------------------------------ *)
(* Bounded buffers end to end *)

(* Whatever the budget, policy, loss and queue contention do to the
   frame stream, delivery stays in-order, duplicate-free and complete:
   budget drops are repaired by the same timer machinery as channel
   losses, and no block ack ever covers a refused slot (a covered slot
   would never be retransmitted and the transfer could not finish). *)
let test_pressure_safety_property =
  qcheck
    (QCheck.Test.make ~count:40 ~name:"bounded reassembly never corrupts or stalls delivery"
       QCheck.(pair (int_range 0 10_000) bool)
       (fun (seed, drop_new) ->
         let policy = if drop_new then Config.Drop_new else Config.Drop_furthest in
         let config =
           Config.make ~window:8 ~wire_modulus:(Some 16) ~rto:600 ~max_transit:200
             ~adaptive_rto:true ~rx_budget:2 ~drop_policy:policy ()
         in
         let r =
           Harness.run blockack ~seed ~messages:50 ~config ~data_loss:0.05 ~ack_loss:0.05
             ~data_delay:(Ba_channel.Dist.Uniform (20, 60))
             ~ack_delay:(Ba_channel.Dist.Uniform (20, 60)) ~data_bottleneck:(5, 3) ()
         in
         Harness.correct r))

(* ------------------------------------------------------------------ *)
(* The overload chaos class *)

(* The squeeze has to bite: across a seed sweep the bounded receiver must
   actually refuse frames — otherwise the class tests nothing. *)
let test_overload_class_bites () =
  let drops = ref 0 in
  List.iter
    (fun seed ->
      (match Chaos.run_one ~messages:60 blockack Chaos.Overload ~seed with
      | Some f ->
          Alcotest.failf "overload seed=%d failed: %s" seed
            (Format.asprintf "%a" Harness.pp_result f.Chaos.result)
      | None -> ());
      (* run_one hides the result on success, so re-run the cell through
         the harness with the same derived squeeze to count refusals. *)
      let config, bottleneck = Chaos.overload_squeeze ~seed Chaos.robust_config in
      let delay = Ba_channel.Dist.Constant 50 in
      let r =
        Harness.run blockack ~seed ~messages:60 ~config ~data_delay:delay ~ack_delay:delay
          ~data_bottleneck:bottleneck ()
      in
      drops := !drops + r.Harness.pressure_drops)
    (List.init 10 (fun i -> i + 1));
  if !drops = 0 then Alcotest.fail "overload sweep never triggered a pressure drop"

let test_overload_replayable () =
  check Alcotest.bool "registered" true (Chaos.class_of_name "overload" = Some Chaos.Overload);
  check Alcotest.string "name round-trips" "overload" (Chaos.class_name Chaos.Overload);
  check Alcotest.bool "in the campaign's default class list" true
    (List.mem Chaos.Overload Chaos.all_classes)

(* ------------------------------------------------------------------ *)
(* S2: surge, quarantine, recovery *)

let s2_base_flows = 4
let s2_surge_at = 2_000
let s2_stall_for = 5_000
let s2_messages = 40

let s2_specs () =
  let config = Registry.config ~window:8 ~rto:600 (entry "blockack-multi") () in
  List.init s2_base_flows (fun _ -> Fabric.spec ~config ~messages:s2_messages blockack)
  @ List.init s2_base_flows (fun _ ->
        Fabric.spec ~config ~messages:s2_messages ~start_at:s2_surge_at blockack)

let s2_budget =
  (* Exactly the worst-case need of base + surge: the surge is covered by
     admission up front, so the budget holds through its peak. *)
  2 * s2_base_flows * 2 * 8 * 32

let s2_watchdog = { Watchdog.default_config with Watchdog.check_interval = 500 }

let s2_stall_victim engine (flows : Flow.t array) =
  let victim = flows.(s2_base_flows) in
  ignore
    (Engine.schedule_at engine ~at:(s2_surge_at + 100) (fun () -> Flow.crash_receiver victim));
  ignore
    (Engine.schedule_at engine ~at:(s2_surge_at + 100 + s2_stall_for) (fun () ->
         Flow.restart_receiver victim))

let test_s2_surge_acceptance () =
  let surged =
    Fabric.run ~seed:7 ~data_loss:0.01 ~ack_loss:0.01 ~memory_budget:s2_budget
      ~watchdog:s2_watchdog ~on_flows:s2_stall_victim (s2_specs ())
  in
  (* 1. Memory stays under budget through the surge peak. *)
  check Alcotest.bool
    (Printf.sprintf "peak %dB within budget %dB" surged.Fabric.mem_peak_bytes s2_budget)
    true
    (surged.Fabric.mem_peak_bytes <= s2_budget);
  (* 2. The stalled flow was quarantined, recovered via the resync
     handshake, and finished; nobody is still gated at the end. *)
  check Alcotest.bool "quarantine happened" true (surged.Fabric.quarantine_events >= 1);
  check Alcotest.bool "watchdog resyncs happened" true (surged.Fabric.watchdog_resyncs >= 1);
  check Alcotest.int "nothing still quarantined" 0 surged.Fabric.quarantined;
  let victim = List.nth surged.Fabric.flows s2_base_flows in
  check Alcotest.bool "victim restarted through the handshake" true
    (victim.Harness.restarts >= 1);
  check Alcotest.bool "victim completed" true victim.Harness.completed;
  check Alcotest.bool "every flow correct" true
    (List.for_all Harness.correct surged.Fabric.flows);
  (* 3. The n-1 healthy base flows barely notice: goodput within 10% of
     the same flows in a surge-free, fault-free baseline run. *)
  let baseline =
    Fabric.run ~seed:7 ~data_loss:0.01 ~ack_loss:0.01
      (List.filteri (fun i _ -> i < s2_base_flows) (s2_specs ()))
  in
  List.iteri
    (fun i (b : Harness.result) ->
      let s = List.nth surged.Fabric.flows i in
      check Alcotest.bool
        (Printf.sprintf "flow %d goodput %.1f vs baseline %.1f within 10%%" i
           s.Harness.goodput b.Harness.goodput)
        true
        (s.Harness.goodput >= 0.9 *. b.Harness.goodput))
    baseline.Fabric.flows

(* Soak rounds are pure functions of their seed: the same scenario run
   twice (and on any pool) is structurally identical. *)
let test_s2_deterministic () =
  let run () =
    Fabric.run ~seed:11 ~data_loss:0.02 ~ack_loss:0.02 ~memory_budget:s2_budget
      ~watchdog:s2_watchdog ~on_flows:s2_stall_victim (s2_specs ())
  in
  check Alcotest.bool "same seed, same surge run" true (run () = run ())

let () =
  Alcotest.run "overload"
    [
      ( "watchdog",
        [
          Alcotest.test_case "escalation with hysteresis" `Quick test_watchdog_escalation;
          Alcotest.test_case "progress resets" `Quick test_watchdog_progress_resets;
          Alcotest.test_case "probation and release" `Quick test_watchdog_probation_and_release;
          Alcotest.test_case "completed is healthy forever" `Quick
            test_watchdog_completed_is_healthy_forever;
          Alcotest.test_case "config validated" `Quick test_watchdog_config_validated;
        ] );
      ( "admission",
        [
          Alcotest.test_case "unclamped when budget allows" `Quick
            test_admission_unclamped_when_budget_allows;
          Alcotest.test_case "uniform clamp" `Quick test_admission_uniform_clamp;
          Alcotest.test_case "prefix at clamp one" `Quick test_admission_prefix_at_clamp_one;
          Alcotest.test_case "hopeless budget rejected" `Quick
            test_admission_rejects_hopeless_budget;
        ] );
      ( "bounded buffers",
        [ test_pressure_safety_property ] );
      ( "chaos class",
        [
          Alcotest.test_case "squeeze bites and stays safe" `Quick test_overload_class_bites;
          Alcotest.test_case "overload is a named, replayable class" `Quick
            test_overload_replayable;
        ] );
      ( "s2 surge",
        [
          Alcotest.test_case "budget, quarantine, recovery, bystanders" `Quick
            test_s2_surge_acceptance;
          Alcotest.test_case "surge run deterministic" `Quick test_s2_deterministic;
        ] );
    ]
