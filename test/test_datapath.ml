(* Old-vs-new data-path equivalence (property test).

   The zero-allocation refactor rewrote the endpoint bookkeeping — the
   receiver's [Ring_buffer] reassembly became flat arrays, the sender's
   per-sequence timer closures became persistent engine slots — while
   claiming byte-identical observable behavior. This file holds it to
   that claim: the pre-refactor sender and receiver are embedded below
   verbatim (as [Ref_impl], still compiling against today's interfaces),
   wrapped in the same {!Ba_proto.Protocol.S} signature, and driven
   through identical harness runs — same seeds, same fault plans, same
   crash schedules. Every run must produce an identical result record
   (delivered counts, acks, retransmissions, latency samples, ticks) and,
   in the manually-wired scenarios, an identical wire-level trace and
   delivered-payload sequence. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Engine = Ba_sim.Engine
module Wire = Ba_proto.Wire
module Dist = Ba_channel.Dist
module Link = Ba_channel.Link
module Fault_plan = Ba_channel.Fault_plan
module Crash_plan = Ba_proto.Crash_plan
module Harness = Ba_proto.Harness

(* ------------------------------------------------------------------ *)
(* Reference implementations: the pre-refactor [Receiver] and
   [Sender_multi], verbatim. Do not modernise these — their point is to
   be the old code. *)

module Ref_impl = struct
  (* The copies keep their full original API; most accessors go unused
     here. *)
  [@@@warning "-32"]

  module Config = Blockack.Config
  module Seqcodec = Blockack.Seqcodec
  module Rtt_estimator = Blockack.Rtt_estimator
  module Window_guard = Blockack.Window_guard

  module Receiver = struct
    type t = {
      config : Config.t;
      codec : Seqcodec.t;
      tx : Ba_proto.Wire.ack -> unit;
      deliver : string -> unit;
      buffer : string Ba_util.Ring_buffer.t;  (* payloads of [nr, nr + w) received out of order *)
      ack_timer : Ba_sim.Timer.t;
      sync_timer : Ba_sim.Timer.t;  (* POS retry while awaiting the sender's FIN *)
      mutable nr : int;
      mutable vr : int;
      mutable alive : bool;
      mutable epoch : int;  (* incarnation; stable storage, like [nr] *)
      mutable syncing : bool;  (* restarted; POS sent, FIN (or fresh data) pending *)
      mutable acks_sent : int;
      mutable dup_acks_sent : int;
      mutable corrupt_dropped : int;
      mutable pressure_dropped : int;  (* fresh in-window frames refused for buffer-full *)
      mutable pressure_evicted : int;  (* buffered frames evicted by Drop_furthest *)
      mutable stale_epoch_dropped : int;
      mutable resync_rounds : int;  (* handshake frames sent (POS) *)
      mutable restarts : int;
    }

    let send_ack t ~lo ~hi =
      t.acks_sent <- t.acks_sent + 1;
      t.tx
        (Ba_proto.Wire.make_ack_e ~epoch:t.epoch ~lo:(Seqcodec.encode t.codec lo)
           ~hi:(Seqcodec.encode t.codec hi))

    (* Handshake message 2 (POS): "my stable delivered count is [nr]; resume
       there". Sent in reply to a REQ, and spontaneously (with retries) after
       our own restart — the receiver is the position authority, so its
       restart skips REQ. Not counted in [acks_sent]: that is the paper's
       acknowledgment-economy metric and resync frames are not acks. *)
    let send_pos t =
      t.resync_rounds <- t.resync_rounds + 1;
      t.tx (Ba_proto.Wire.make_sync_pos ~epoch:t.epoch ~pos:t.nr);
      if t.syncing then Ba_sim.Timer.start t.sync_timer

    (* Action 5: acknowledge the run [nr, vr) in one block and hand its
       payloads to the application in order. *)
    let flush t =
      Ba_sim.Timer.stop t.ack_timer;
      if t.nr < t.vr then begin
        send_ack t ~lo:t.nr ~hi:(t.vr - 1);
        while t.nr < t.vr do
          (match Ba_util.Ring_buffer.get t.buffer t.nr with
          | Some payload ->
              Ba_util.Ring_buffer.remove t.buffer t.nr;
              t.deliver payload
          | None -> invalid_arg "Receiver.flush: hole in accepted run");
          t.nr <- t.nr + 1
        done
      end

    let create engine config ~tx ~deliver =
      Config.validate config;
      let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
      let rec t =
        lazy
          {
            config;
            codec;
            tx;
            deliver;
            buffer = Ba_util.Ring_buffer.create config.Config.window;
            ack_timer =
              Ba_sim.Timer.create engine ~duration:config.Config.ack_coalesce (fun () ->
                  flush (Lazy.force t));
            sync_timer =
              Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
                  let t = Lazy.force t in
                  if t.alive && t.syncing then send_pos t);
            nr = 0;
            vr = 0;
            alive = true;
            epoch = 0;
            syncing = false;
            acks_sent = 0;
            dup_acks_sent = 0;
            corrupt_dropped = 0;
            pressure_dropped = 0;
            pressure_evicted = 0;
            stale_epoch_dropped = 0;
            resync_rounds = 0;
            restarts = 0;
          }
      in
      Lazy.force t

    (* The sender restarted into a later incarnation (we learn it from any
       frame carrying a higher epoch): adopt the epoch and discard the
       out-of-order buffer — the new incarnation will resend everything from
       the position we announce, and frames of the old one are now stale. *)
    let adopt_epoch t e =
      t.epoch <- e;
      t.vr <- t.nr;
      Ba_util.Ring_buffer.clear t.buffer;
      Ba_sim.Timer.stop t.ack_timer

    let stop_syncing t =
      if t.syncing then begin
        t.syncing <- false;
        Ba_sim.Timer.stop t.sync_timer
      end

    (* Budget admission (Jain, DEC-TR-342). Only the out-of-order slots
       beyond the contiguous run count against [rx_budget]: slots in
       [nr, vr) are committed — [flush] will acknowledge and deliver them —
       and the run-extending frame [v = vr] is always admitted, which is
       what keeps drop-new from livelocking on a full buffer. A refused or
       evicted frame was never acknowledged, so the sender's per-message
       timer retransmits it: a pressure drop is behaviorally a channel
       loss, and the block-ack ranges stay sound. *)
    let admit t v payload =
      let over_budget =
        match t.config.Config.rx_budget with
        | None -> false
        | Some b ->
            v > t.vr
            && Ba_util.Ring_buffer.occupancy t.buffer - (t.vr - t.nr) >= b
      in
      if not over_budget then Ba_util.Ring_buffer.set t.buffer v payload
      else
        match t.config.Config.drop_policy with
        | Config.Drop_new -> t.pressure_dropped <- t.pressure_dropped + 1
        | Config.Drop_furthest ->
            let furthest = ref (-1) in
            Ba_util.Ring_buffer.iter
              (fun i _ -> if i > t.vr && i > !furthest then furthest := i)
              t.buffer;
            if !furthest > v then begin
              Ba_util.Ring_buffer.remove t.buffer !furthest;
              t.pressure_evicted <- t.pressure_evicted + 1;
              Ba_util.Ring_buffer.set t.buffer v payload
            end
            else t.pressure_dropped <- t.pressure_dropped + 1

    (* Actions 3 + 4: record the reception, extend the contiguous run, and
       either flush immediately or leave the run open for coalescing. A
       frame that fails its checksum is discarded before any of that — it
       must neither be delivered nor acknowledged (the sender's timer will
       retransmit it), and its header cannot be trusted enough even to
       re-ack. With incarnation epochs on, a frame from a dead incarnation
       (lower epoch) is likewise rejected outright: accepting it is exactly
       the duplicate-delivery bug the crash spec exhibits. *)
    let on_data t d =
      if not t.alive then ()
      else if not (Ba_proto.Wire.data_ok d) then t.corrupt_dropped <- t.corrupt_dropped + 1
      else begin
        let epochs = t.config.Config.resync_epochs in
        if epochs && d.Ba_proto.Wire.epoch < t.epoch then
          t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
        else begin
          if epochs && d.Ba_proto.Wire.epoch > t.epoch then adopt_epoch t d.Ba_proto.Wire.epoch;
          match d.Ba_proto.Wire.dkind with
          | Ba_proto.Wire.Sync_req -> if epochs then send_pos t
          | Ba_proto.Wire.Sync_fin -> stop_syncing t
          | Ba_proto.Wire.Msg ->
              (* Current-epoch data implies the sender knows our position:
                 an implicit FIN. *)
              stop_syncing t;
              let { Ba_proto.Wire.seq; payload; _ } = d in
              let v = Seqcodec.decode_data t.codec ~nr:t.nr seq in
              if v < t.nr then begin
                (* Already accepted: its acknowledgment must have been lost; re-ack. *)
                t.dup_acks_sent <- t.dup_acks_sent + 1;
                send_ack t ~lo:v ~hi:v
              end
              else if v < t.nr + t.config.Config.window then begin
                if not (Ba_util.Ring_buffer.mem t.buffer v) then admit t v payload;
                while Ba_util.Ring_buffer.mem t.buffer t.vr do
                  t.vr <- t.vr + 1
                done;
                if t.nr < t.vr then begin
                  if t.config.Config.ack_coalesce = 0 then flush t
                  else if not (Ba_sim.Timer.is_armed t.ack_timer) then Ba_sim.Timer.start t.ack_timer
                end
              end
              (* v >= nr + w cannot come from a conforming sender; drop defensively. *)
        end
      end

    (* Crash: all volatile state is gone — the out-of-order buffer, the
       contiguous frontier [vr], pending timers. What survives is what the
       application itself made durable: the delivered count [nr] (delivery
       to the app is durable by definition) and, with [resync_epochs], the
       incarnation epoch. *)
    let crash t =
      if t.alive then begin
        t.alive <- false;
        t.syncing <- false;
        Ba_sim.Timer.stop t.ack_timer;
        Ba_sim.Timer.stop t.sync_timer;
        Ba_util.Ring_buffer.clear t.buffer;
        t.vr <- t.nr
      end

    let restart t =
      if not t.alive then begin
        t.alive <- true;
        t.restarts <- t.restarts + 1;
        if t.config.Config.resync_epochs then begin
          t.epoch <- t.epoch + 1;
          t.syncing <- true;
          send_pos t
        end
        else begin
          (* Negative control: a naive restart zeroes everything, so stale
             in-flight copies of already-delivered data decode into the
             fresh acceptance window — duplicate delivery. *)
          t.nr <- 0;
          t.vr <- 0
        end
      end

    let nr t = t.nr
    let vr t = t.vr
    let buffered t = Ba_util.Ring_buffer.occupancy t.buffer

    let buffered_bytes t =
      let n = ref 0 in
      Ba_util.Ring_buffer.iter (fun _ p -> n := !n + String.length p) t.buffer;
      !n

    let pressure_dropped t = t.pressure_dropped
    let pressure_evicted t = t.pressure_evicted
    let acks_sent t = t.acks_sent
    let dup_acks_sent t = t.dup_acks_sent
    let corrupt_dropped t = t.corrupt_dropped
    let alive t = t.alive
    let epoch t = t.epoch
    let syncing t = t.syncing
    let stale_epoch_dropped t = t.stale_epoch_dropped
    let resync_rounds t = t.resync_rounds
    let restarts t = t.restarts
  end

  module Sender_multi = struct
    type t = {
      config : Config.t;
      codec : Seqcodec.t;
      engine : Ba_sim.Engine.t;
      tx : Ba_proto.Wire.data -> unit;
      source : Ba_proto.Source.t;
      buffer : string Ba_util.Ring_buffer.t;
      acked : unit Ba_util.Ring_buffer.t;
      timers : Ba_sim.Timer.t Ba_util.Ring_buffer.t;  (* one armed timer per outstanding message *)
      sent_at : int Ba_util.Ring_buffer.t;  (* first-transmission time, for RTT sampling *)
      resent : int Ba_util.Ring_buffer.t;  (* per-message retransmission count (Karn's rule + backoff) *)
      estimator : Rtt_estimator.t option;
      guard : Window_guard.t;
      sync_timer : Ba_sim.Timer.t;  (* REQ retry while awaiting the receiver's POS *)
      mutable na : int;
      mutable ns : int;
      mutable alive : bool;
      mutable epoch : int;  (* incarnation; stable storage *)
      mutable syncing : bool;  (* restarted; REQ sent, POS pending *)
      mutable retransmissions : int;
      mutable corrupt_acks_dropped : int;
      mutable stale_epoch_dropped : int;
      mutable resync_rounds : int;  (* handshake frames sent (REQ + FIN) *)
      mutable restarts : int;
      (* AIMD congestion window (dynamic_window mode): cwnd counts messages,
         ack_credit accumulates fractional additive increase. *)
      mutable cwnd : int;
      mutable ack_credit : int;
      mutable wclamp : int option;
          (* externally imposed window clamp (fabric backpressure); survives
             crash–restart because the pressure is outside this endpoint *)
    }

    let outstanding t = t.ns - t.na

    (* The effective window is the configured one narrowed by every active
       pressure signal: the static retransmit-buffer budget, any fabric
       backpressure clamp, and (in dynamic mode) the AIMD congestion
       window. *)
    let effective_window t =
      let w = t.config.Config.window in
      let w = match t.config.Config.tx_budget with Some b -> min w b | None -> w in
      let w = match t.wclamp with Some c -> min w c | None -> w in
      if t.config.Config.dynamic_window then min t.cwnd w else w

    (* Additive increase: one extra message of window per cwnd acknowledged
       (i.e. +1 per round trip at saturation). *)
    let on_progress t acked_count =
      if t.config.Config.dynamic_window && t.cwnd < t.config.Config.window then begin
        t.ack_credit <- t.ack_credit + acked_count;
        if t.ack_credit >= t.cwnd then begin
          t.ack_credit <- 0;
          t.cwnd <- t.cwnd + 1
        end
      end

    (* Multiplicative decrease on timeout. *)
    let on_loss_signal t =
      if t.config.Config.dynamic_window then begin
        t.cwnd <- max 1 (t.cwnd / 2);
        t.ack_credit <- 0
      end

    let base_rto t =
      match t.estimator with Some e -> Rtt_estimator.rto e | None -> t.config.Config.rto

    (* Adaptive mode backs off per message: each retransmission of [seq]
       doubles its own timer, independently of its window mates (a shared
       backoff would compound across the whole window). Fixed mode keeps the
       paper's constant timeout period. *)
    let rto_for t seq =
      match t.estimator with
      | None -> t.config.Config.rto
      | Some _ ->
          let retx = Option.value ~default:0 (Ba_util.Ring_buffer.get t.resent seq) in
          let factor = 1 lsl min retx 6 in
          min (base_rto t * factor) (60 * t.config.Config.rto)

    (* Handshake message 1 (REQ): a restarted sender has no idea how much of
       its outbox the receiver already delivered; ask. Retried on a timer
       until POS arrives. *)
    let send_req t =
      t.resync_rounds <- t.resync_rounds + 1;
      t.tx (Ba_proto.Wire.make_sync_req ~epoch:t.epoch);
      Ba_sim.Timer.start t.sync_timer

    let send_fin t =
      t.resync_rounds <- t.resync_rounds + 1;
      t.tx (Ba_proto.Wire.make_sync_fin ~epoch:t.epoch)

    (* Action 2': the timer of message [seq] expired, meaning no copy of it
       or of a covering acknowledgment survives in either channel; resend it
       and re-arm its own timer only. *)
    let rec on_timeout t seq =
      if t.alive && (not t.syncing) && seq >= t.na && seq < t.ns
         && not (Ba_util.Ring_buffer.mem t.acked seq)
      then begin
        t.retransmissions <- t.retransmissions + 1;
        on_loss_signal t;
        (* Karn's algorithm, second half: the rule above (sample_rtt) only
           excludes tainted samples, so during an outage the estimator would
           otherwise keep its stale pre-outage rto and every *newly* pumped
           message would retransmit at that collapsed value forever. Back off
           the shared estimate too, but only when the oldest outstanding
           message expires — w simultaneous per-message expiries must not
           compound into a 2^w backoff. The next genuine sample rebuilds the
           rto from srtt/rttvar as usual. *)
        if seq = t.na then Option.iter Rtt_estimator.backoff t.estimator;
        let retx = Option.value ~default:0 (Ba_util.Ring_buffer.get t.resent seq) in
        Ba_util.Ring_buffer.set t.resent seq (retx + 1);
        (* With unbounded wire numbers decode is exact and no hold is needed. *)
        if t.config.Config.wire_modulus <> None then
          Window_guard.note_retransmission t.guard ~seq ~window:t.config.Config.window
            ~hold_for:(Config.hold_duration t.config);
        transmit t seq
      end

    and transmit t seq =
      match Ba_util.Ring_buffer.get t.buffer seq with
      | None -> invalid_arg "Sender_multi.transmit: no buffered payload"
      | Some payload ->
          t.tx (Ba_proto.Wire.make_data_e ~epoch:t.epoch ~seq:(Seqcodec.encode t.codec seq) ~payload);
          let timer =
            match Ba_util.Ring_buffer.get t.timers seq with
            | Some timer -> timer
            | None ->
                let timer =
                  Ba_sim.Timer.create t.engine ~duration:t.config.Config.rto (fun () ->
                      on_timeout t seq)
                in
                Ba_util.Ring_buffer.set t.timers seq timer;
                timer
          in
          Ba_sim.Timer.start_for timer (rto_for t seq)

    let rec pump t =
      if t.alive && (not t.syncing) && outstanding t < effective_window t then begin
        if t.ns >= Window_guard.frontier t.guard then
          (* A retransmitted copy may still be in flight; sending past its
             decode window would risk mis-reconstruction at the receiver. *)
          Window_guard.when_blocked t.guard (fun () -> pump t)
        else begin
          match Ba_proto.Source.next t.source with
          | None -> ()
          | Some payload ->
              Ba_util.Ring_buffer.set t.buffer t.ns payload;
              t.ns <- t.ns + 1;
              Ba_util.Ring_buffer.set t.sent_at (t.ns - 1) (Ba_sim.Engine.now t.engine);
              transmit t (t.ns - 1);
              pump t
        end
      end

    let is_done t =
      t.alive && (not t.syncing) && outstanding t = 0 && Ba_proto.Source.exhausted t.source

    let create engine config ~tx ~next_payload =
      Config.validate config;
      let source = Ba_proto.Source.create next_payload in
      let codec = Seqcodec.create ~window:config.Config.window ~wire_modulus:config.Config.wire_modulus in
      let estimator =
        if config.Config.adaptive_rto then begin
          (* With a finite modulus the configured rto is the soundness floor
             (it encodes the channel-lifetime bound); unbounded wire numbers
             can chase the real round trip freely. *)
          let floor =
            match config.Config.wire_modulus with Some _ -> config.Config.rto | None -> 2
          in
          Some
            (Rtt_estimator.create ~floor ~ceiling:(60 * config.Config.rto)
               ~initial_rto:config.Config.rto ())
        end
        else None
      in
      let rec t =
        lazy
          {
            config;
            codec;
            engine;
            tx;
            source;
            buffer = Ba_util.Ring_buffer.create config.Config.window;
            acked = Ba_util.Ring_buffer.create config.Config.window;
            timers = Ba_util.Ring_buffer.create config.Config.window;
            sent_at = Ba_util.Ring_buffer.create config.Config.window;
            resent = Ba_util.Ring_buffer.create config.Config.window;
            estimator;
            guard = Window_guard.create engine;
            sync_timer =
              Ba_sim.Timer.create engine ~duration:config.Config.rto (fun () ->
                  let t = Lazy.force t in
                  if t.alive && t.syncing then send_req t);
            na = 0;
            ns = 0;
            alive = true;
            epoch = 0;
            syncing = false;
            retransmissions = 0;
            corrupt_acks_dropped = 0;
            stale_epoch_dropped = 0;
            resync_rounds = 0;
            restarts = 0;
            cwnd = 1;
            ack_credit = 0;
            wclamp = None;
          }
      in
      Lazy.force t

    let stop_timer t seq =
      match Ba_util.Ring_buffer.get t.timers seq with
      | Some timer ->
          Ba_sim.Timer.stop timer;
          Ba_util.Ring_buffer.remove t.timers seq
      | None -> ()

    let forget t seq =
      Ba_util.Ring_buffer.remove t.buffer seq;
      Ba_util.Ring_buffer.remove t.sent_at seq;
      Ba_util.Ring_buffer.remove t.resent seq;
      stop_timer t seq

    let sample_rtt t seq =
      match t.estimator with
      | None -> ()
      | Some e ->
          (* Karn's rule: only first-transmission acknowledgments are
             unambiguous round-trip samples. *)
          if Ba_util.Ring_buffer.get t.resent seq = None then begin
            match Ba_util.Ring_buffer.get t.sent_at seq with
            | Some sent -> Rtt_estimator.observe e (Ba_sim.Engine.now t.engine - sent)
            | None -> ()
          end

    (* Wipe all volatile state: payload/ack/timer rings, the congestion and
       rtt estimators, the retransmission-frontier holds. [na]/[ns] are
       zeroed too (they are meaningless without the buffers); the truth about
       position lives at the receiver and comes back via POS. Stable storage
       keeps only the epoch and, implicitly, the application outbox
       ({!Ba_proto.Source} retains issued payloads for replay). *)
    let wipe_volatile t =
      Ba_util.Ring_buffer.iter (fun _ timer -> Ba_sim.Timer.stop timer) t.timers;
      Ba_util.Ring_buffer.clear t.timers;
      Ba_util.Ring_buffer.clear t.buffer;
      Ba_util.Ring_buffer.clear t.acked;
      Ba_util.Ring_buffer.clear t.sent_at;
      Ba_util.Ring_buffer.clear t.resent;
      Window_guard.clear t.guard;
      Option.iter Rtt_estimator.reset t.estimator;
      Ba_sim.Timer.stop t.sync_timer;
      t.na <- 0;
      t.ns <- 0;
      t.cwnd <- 1;
      t.ack_credit <- 0

    let crash t =
      if t.alive then begin
        t.alive <- false;
        t.syncing <- false;
        wipe_volatile t
      end

    (* Adopt the receiver-announced resume position: align [na]/[ns] there
       and rewind the outbox so [pump] replays from it. *)
    let resync_to t pos =
      Ba_proto.Source.rewind t.source ~to_:pos;
      t.na <- pos;
      t.ns <- pos;
      t.syncing <- false;
      Ba_sim.Timer.stop t.sync_timer

    let restart t =
      if not t.alive then begin
        t.alive <- true;
        t.restarts <- t.restarts + 1;
        if t.config.Config.resync_epochs then begin
          t.epoch <- t.epoch + 1;
          t.syncing <- true;
          send_req t
        end
        else begin
          (* Negative control: resume blind from zero, replaying the whole
             outbox against a receiver that may be far ahead. *)
          Ba_proto.Source.rewind t.source ~to_:0;
          pump t
        end
      end

    (* A corrupted acknowledgment is discarded outright: a mangled block
       range could cover messages the receiver never accepted, which is a
       safety violation, not just waste. Duplicated acknowledgments are
       harmless — every covered position is already guarded by the
       [na <= seq < ns && not acked] test below. With epochs on, frames from
       a dead incarnation are rejected the same way the receiver rejects
       stale data; a *higher* epoch means the receiver restarted and its POS
       tells us everything we need. *)
    let on_ack t a =
      if not t.alive then ()
      else if not (Ba_proto.Wire.ack_ok a) then
        t.corrupt_acks_dropped <- t.corrupt_acks_dropped + 1
      else begin
        let epochs = t.config.Config.resync_epochs in
        if epochs && a.Ba_proto.Wire.epoch < t.epoch then
          t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
        else if epochs && a.Ba_proto.Wire.epoch > t.epoch then begin
          (* Only a restarted receiver mints a higher epoch, and it only
             sends POS until we confirm — adopt its epoch and position. *)
          match a.Ba_proto.Wire.akind with
          | Ba_proto.Wire.Sync_pos ->
              t.epoch <- a.Ba_proto.Wire.epoch;
              wipe_volatile t;
              resync_to t a.Ba_proto.Wire.lo;
              send_fin t;
              pump t
          | Ba_proto.Wire.Ack -> t.stale_epoch_dropped <- t.stale_epoch_dropped + 1
        end
        else begin
          match a.Ba_proto.Wire.akind with
          | Ba_proto.Wire.Sync_pos ->
              if t.syncing then begin
                resync_to t a.Ba_proto.Wire.lo;
                send_fin t;
                pump t
              end
              else
                (* Duplicate POS: our FIN was lost and the receiver is still
                   retrying. Re-confirm; do not move the window. *)
                send_fin t
          | Ba_proto.Wire.Ack ->
              if not t.syncing then begin
                let { Ba_proto.Wire.lo; hi; _ } = a in
                let count = Seqcodec.span t.codec ~lo ~hi in
                for k = 0 to count - 1 do
                  let wire = Seqcodec.shift t.codec lo k in
                  let seq = Seqcodec.decode_ack t.codec ~na:t.na wire in
                  if seq >= t.na && seq < t.ns && not (Ba_util.Ring_buffer.mem t.acked seq) then begin
                    sample_rtt t seq;
                    Ba_util.Ring_buffer.set t.acked seq ();
                    stop_timer t seq
                  end
                done;
                let na_before = t.na in
                while Ba_util.Ring_buffer.mem t.acked t.na do
                  Ba_util.Ring_buffer.remove t.acked t.na;
                  forget t t.na;
                  t.na <- t.na + 1
                done;
                on_progress t (t.na - na_before);
                pump t
              end
        end
      end

    let na t = t.na
    let ns t = t.ns
    let retransmissions t = t.retransmissions
    let corrupt_acks_dropped t = t.corrupt_acks_dropped
    let acked_total t = t.na

    let rto_now t = base_rto t

    let srtt t = Option.map Rtt_estimator.srtt t.estimator

    let cwnd t = t.cwnd

    (* Fabric backpressure: clamp the effective window to [n] messages
       ([n >= window] removes the clamp). Only future pumps are affected —
       already-outstanding messages finish under their own timers. *)
    let clamp_window t n =
      if n < 1 then invalid_arg "Sender_multi.clamp_window: clamp must be >= 1";
      t.wclamp <- (if n >= t.config.Config.window then None else Some n)

    let window_clamp t = t.wclamp

    let buffered_bytes t =
      let n = ref 0 in
      Ba_util.Ring_buffer.iter (fun _ p -> n := !n + String.length p) t.buffer;
      !n

    let alive t = t.alive
    let epoch t = t.epoch
    let syncing t = t.syncing
    let stale_epoch_dropped t = t.stale_epoch_dropped
    let resync_rounds t = t.resync_rounds
    let restarts t = t.restarts
  end
end

(* The reference pair wrapped as a first-class protocol. [name] matches
   the real one so whole result records compare equal. *)
module Ref_multi : Ba_proto.Protocol.S = struct
  let name = "blockack-multi"

  type sender = Ref_impl.Sender_multi.t
  type receiver = Ref_impl.Receiver.t

  let create_sender = Ref_impl.Sender_multi.create
  let sender_on_ack = Ref_impl.Sender_multi.on_ack
  let sender_pump = Ref_impl.Sender_multi.pump
  let sender_done = Ref_impl.Sender_multi.is_done
  let sender_outstanding = Ref_impl.Sender_multi.outstanding
  let sender_retransmissions = Ref_impl.Sender_multi.retransmissions
  let create_receiver = Ref_impl.Receiver.create
  let receiver_on_data = Ref_impl.Receiver.on_data
  let ack_wire_bytes = Wire.ack_bytes_block
  let crash_tolerant = true
  let sender_crash = Ref_impl.Sender_multi.crash
  let sender_restart = Ref_impl.Sender_multi.restart
  let receiver_crash = Ref_impl.Receiver.crash
  let receiver_restart = Ref_impl.Receiver.restart
  let sender_resync_rounds = Ref_impl.Sender_multi.resync_rounds
  let receiver_resync_rounds = Ref_impl.Receiver.resync_rounds

  (* The reference pair predates cross-process restore; the equivalence
     runs never exercise it. *)
  let receiver_position = Ref_impl.Receiver.nr

  let receiver_restore (_ : receiver) ~epoch:(_ : int) ~pos:(_ : int) =
    invalid_arg "Ref_multi: receiver_restore not supported"

  let sender_mem_bytes = Ref_impl.Sender_multi.buffered_bytes
  let receiver_mem_bytes = Ref_impl.Receiver.buffered_bytes
  let sender_clamp_window = Ref_impl.Sender_multi.clamp_window
  let receiver_pressure_dropped = Ref_impl.Receiver.pressure_dropped
end

let ref_multi : Ba_proto.Protocol.t = (module Ref_multi)

(* ------------------------------------------------------------------ *)
(* Harness-level equivalence: identical runs, whole-result equality.
   [Flow.result] folds in everything observable at the application
   boundary — delivery/duplicate/misorder counts, every wire counter,
   the raw per-payload latency samples — so record equality is a strong
   statement. The harness itself independently checks payload *content*
   against the workload (the [corrupted]/[misordered] counters). *)

let result_t =
  let pp ppf (r : Harness.result) =
    Format.fprintf ppf
      "%s completed=%b ticks=%d delivered=%d dup=%d mis=%d corr=%d data_sent=%d acks=%d retx=%d \
       resync=%d crashes=%d"
      r.protocol r.completed r.ticks r.delivered r.duplicates r.misordered r.corrupted r.data_sent
      r.acks_sent r.retransmissions r.resync_rounds r.crashes
  in
  Alcotest.testable pp ( = )

let run_both ?seed ?messages ?config ?data_loss ?ack_loss ?data_delay ?ack_delay ?data_plan
    ?ack_plan ?crash_plan name =
  let go proto =
    Harness.run proto ?seed ?messages ?config ?data_loss ?ack_loss ?data_delay ?ack_delay
      ?data_plan ?ack_plan ?crash_plan ()
  in
  check result_t name (go ref_multi) (go Blockack.Protocols.multi)

let f1_config ?(coalesce = 0) () =
  Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~ack_coalesce:coalesce
    ~max_transit:50 ()

let test_lossless () =
  run_both ~seed:1 ~messages:200 "lossless default config";
  run_both ~seed:2 ~messages:200 ~config:(f1_config ()) "lossless modulus 32"

let test_lossy () =
  List.iter
    (fun seed ->
      run_both ~seed ~messages:200 ~config:(f1_config ()) ~data_loss:0.05 ~ack_loss:0.05
        ~data_delay:(Dist.Constant 50) ~ack_delay:(Dist.Constant 50)
        (Printf.sprintf "5pc loss seed %d" seed))
    [ 3; 4; 5 ]

let test_coalesce () =
  List.iter
    (fun seed ->
      run_both ~seed ~messages:200
        ~config:(f1_config ~coalesce:30 ())
        ~data_loss:0.05 ~ack_loss:0.05 ~data_delay:(Dist.Constant 50)
        ~ack_delay:(Dist.Constant 50)
        (Printf.sprintf "coalesced acks seed %d" seed))
    [ 3; 6 ]

let test_adaptive_dynamic () =
  let config =
    Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~adaptive_rto:true
      ~dynamic_window:true ~max_transit:60 ()
  in
  run_both ~seed:7 ~messages:150 ~config ~data_loss:0.1 ~ack_loss:0.1
    ~data_delay:(Dist.Uniform (40, 60))
    ~ack_delay:(Dist.Uniform (40, 60))
    "adaptive rto + AIMD window, 10pc loss"

let test_fault_plans () =
  let plan = Fault_plan.make ~duplicate:0.1 ~copies:3 ~corrupt:0.1 () in
  run_both ~seed:8 ~messages:150 ~config:(f1_config ()) ~data_loss:0.05 ~ack_loss:0.05
    ~data_delay:(Dist.Constant 50) ~ack_delay:(Dist.Constant 50) ~data_plan:plan ~ack_plan:plan
    "duplication + corruption plan";
  let bursty =
    Fault_plan.make
      ~bursty:
        { Fault_plan.p_enter_bad = 0.02; p_exit_bad = 0.3; loss_good = 0.0; loss_bad = 0.6 }
      ()
  in
  run_both ~seed:9 ~messages:150 ~config:(f1_config ()) ~data_delay:(Dist.Constant 50)
    ~ack_delay:(Dist.Constant 50) ~data_plan:bursty "Gilbert-Elliott bursts";
  let spiky =
    Blockack.Config.make ~window:16 ~rto:300 ~wire_modulus:(Some 32) ~max_transit:120 ()
  in
  let spikes = Fault_plan.make ~delay_spike:(0.2, 40) () in
  run_both ~seed:10 ~messages:150 ~config:spiky ~data_loss:0.03 ~ack_loss:0.03
    ~data_delay:(Dist.Constant 50) ~ack_delay:(Dist.Constant 50) ~data_plan:spikes
    ~ack_plan:spikes "delay spikes (reordering)"

let test_crashes () =
  let plan =
    Crash_plan.make
      [
        { Crash_plan.at = 500; endpoint = Crash_plan.Sender_end; down_for = 400 };
        { Crash_plan.at = 2500; endpoint = Crash_plan.Receiver_end; down_for = 600 };
      ]
  in
  run_both ~seed:11 ~messages:120 ~config:(f1_config ()) ~data_loss:0.05 ~ack_loss:0.05
    ~data_delay:(Dist.Constant 50) ~ack_delay:(Dist.Constant 50) ~crash_plan:plan
    "sender and receiver crash-restart"

(* Randomised sweep: any in-validity-envelope configuration and fault
   plan must leave the two implementations indistinguishable. *)

type scen = {
  seed : int;
  window : int;
  modc : int;  (* 0 unbounded, 1 the minimum legal modulus 2w, 2 a loose 4w *)
  coalesce : int;
  dloss : float;
  aloss : float;
  dup : float;
  corr : float;
  adaptive : bool;
  dynamic : bool;
}

let scen_print s =
  Printf.sprintf
    "seed=%d window=%d modc=%d coalesce=%d dloss=%.3f aloss=%.3f dup=%.3f corr=%.3f adaptive=%b \
     dynamic=%b"
    s.seed s.window s.modc s.coalesce s.dloss s.aloss s.dup s.corr s.adaptive s.dynamic

let scen_gen =
  let open QCheck.Gen in
  map
    (fun ((seed, window, modc, coalesce), ((dloss, aloss), (dup, corr)), (adaptive, dynamic)) ->
      { seed; window; modc; coalesce; dloss; aloss; dup; corr; adaptive; dynamic })
    (triple
       (quad (int_bound 9999) (int_range 2 24) (int_bound 2) (int_bound 90))
       (pair
          (pair (float_bound_inclusive 0.25) (float_bound_inclusive 0.25))
          (pair (float_bound_inclusive 0.15) (float_bound_inclusive 0.15)))
       (pair bool bool))

let scen_arbitrary = QCheck.make ~print:scen_print scen_gen

let prop_equivalent s =
  let wire_modulus =
    match s.modc with 0 -> None | 1 -> Some (2 * s.window) | _ -> Some (4 * s.window)
  in
  let config =
    Blockack.Config.make ~window:s.window ~rto:300 ~wire_modulus ~ack_coalesce:s.coalesce
      ~adaptive_rto:s.adaptive ~dynamic_window:s.dynamic ~max_transit:60 ()
  in
  let plan = Fault_plan.make ~duplicate:s.dup ~corrupt:s.corr () in
  let go proto =
    Harness.run proto ~seed:s.seed ~messages:60 ~config ~data_loss:s.dloss ~ack_loss:s.aloss
      ~data_delay:(Dist.Uniform (40, 60))
      ~ack_delay:(Dist.Uniform (40, 60))
      ~data_plan:plan ~ack_plan:plan ()
  in
  go ref_multi = go Blockack.Protocols.multi

let equivalence_property =
  QCheck.Test.make ~count:30 ~name:"random fault plans: old and new data paths indistinguishable"
    scen_arbitrary prop_equivalent

(* ------------------------------------------------------------------ *)
(* Wire-level trace and payload equivalence: manual wiring so every
   frame either side emits — and every in-order delivery — is recorded
   verbatim and compared as a rendered time-sequence diagram. *)

let trace_run proto ~seed ~messages ~config ~loss =
  let (module P : Ba_proto.Protocol.S) = proto in
  let engine = Engine.create ~seed () in
  let tracer = Ba_trace.Tracer.create ~capacity:200_000 () in
  let record side pp v =
    Ba_trace.Tracer.record tracer ~time:(Engine.now engine) ~side (Format.asprintf "%a" pp v)
  in
  let delivered = ref [] in
  let acks = ref 0 in
  let recv = ref None in
  let send = ref None in
  let dl =
    Link.create engine ~loss ~delay:(Dist.Constant 50) ~corrupt:Wire.corrupt_data
      ~release:Wire.release_data
      ~deliver:(fun d ->
        record Ba_trace.Tracer.Receiver Wire.pp_data d;
        match !recv with Some r -> P.receiver_on_data r d | None -> ())
      ()
  in
  let al =
    Link.create engine ~loss ~delay:(Dist.Constant 50) ~corrupt:Wire.corrupt_ack
      ~release:Wire.release_ack
      ~deliver:(fun a ->
        record Ba_trace.Tracer.Sender Wire.pp_ack a;
        match !send with Some s -> P.sender_on_ack s a | None -> ())
      ()
  in
  let produced = ref 0 in
  let s =
    P.create_sender engine config
      ~tx:(fun d ->
        record Ba_trace.Tracer.Sender Wire.pp_data d;
        Link.send dl d)
      ~next_payload:(fun () ->
        if !produced >= messages then None
        else begin
          let p = Ba_proto.Workload.payload ~seed ~size:32 !produced in
          incr produced;
          Some p
        end)
  in
  let r =
    P.create_receiver engine config
      ~tx:(fun a ->
        incr acks;
        record Ba_trace.Tracer.Receiver Wire.pp_ack a;
        Link.send al a)
      ~deliver:(fun p -> delivered := p :: !delivered)
  in
  recv := Some r;
  send := Some s;
  P.sender_pump s;
  Engine.run ~until:10_000_000 engine;
  (Ba_trace.Tracer.render tracer, List.rev !delivered, !acks, P.sender_done s)

let test_trace_equivalence () =
  List.iter
    (fun (seed, coalesce, loss) ->
      let config = f1_config ~coalesce () in
      let trace_old, payloads_old, acks_old, done_old =
        trace_run ref_multi ~seed ~messages:120 ~config ~loss
      in
      let trace_new, payloads_new, acks_new, done_new =
        trace_run Blockack.Protocols.multi ~seed ~messages:120 ~config ~loss
      in
      let tag fmt = Printf.sprintf fmt seed coalesce in
      check Alcotest.bool (tag "old completed (seed %d c%d)") true done_old;
      check Alcotest.bool (tag "new completed (seed %d c%d)") true done_new;
      check (Alcotest.list Alcotest.string) (tag "delivered payloads (seed %d c%d)") payloads_old
        payloads_new;
      check Alcotest.int (tag "acks sent (seed %d c%d)") acks_old acks_new;
      check Alcotest.string (tag "wire trace (seed %d c%d)") trace_old trace_new)
    [ (21, 0, 0.05); (22, 30, 0.05); (23, 0, 0.0); (24, 20, 0.15) ]

let () =
  Alcotest.run "datapath-equivalence"
    [
      ( "harness",
        [
          Alcotest.test_case "lossless" `Quick test_lossless;
          Alcotest.test_case "5pc loss" `Quick test_lossy;
          Alcotest.test_case "coalesced acks" `Quick test_coalesce;
          Alcotest.test_case "adaptive+dynamic" `Quick test_adaptive_dynamic;
          Alcotest.test_case "fault plans" `Quick test_fault_plans;
          Alcotest.test_case "crash-restart" `Quick test_crashes;
          qcheck equivalence_property;
        ] );
      ("wire-trace", [ Alcotest.test_case "trace+payload equality" `Quick test_trace_equivalence ]);
    ]
