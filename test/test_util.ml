(* Unit and property tests for ba_util: rng, heap, modseq, ring buffer,
   bitset, stats, histogram, table, fqueue. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Ba_util.Rng.create 7 and b = Ba_util.Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Ba_util.Rng.bits64 a) (Ba_util.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Ba_util.Rng.create 7 and b = Ba_util.Rng.create 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Ba_util.Rng.bits64 a) (Ba_util.Rng.bits64 b)) then differs := true
  done;
  check Alcotest.bool "streams differ" true !differs

let test_rng_copy () =
  let a = Ba_util.Rng.create 99 in
  ignore (Ba_util.Rng.bits64 a);
  let b = Ba_util.Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int64 "copy tracks" (Ba_util.Rng.bits64 a) (Ba_util.Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Ba_util.Rng.create 3 in
  let b = Ba_util.Rng.split a in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Ba_util.Rng.bits64 a) (Ba_util.Rng.bits64 b)) then differs := true
  done;
  check Alcotest.bool "split differs from parent" true !differs

let test_rng_int_range () =
  let r = Ba_util.Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Ba_util.Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of range: %d" v
  done

let test_rng_int_covers_all () =
  let r = Ba_util.Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1_000 do
    seen.(Ba_util.Rng.int r 5) <- true
  done;
  Array.iteri (fun i b -> check Alcotest.bool (Printf.sprintf "value %d seen" i) true b) seen

let test_rng_int_in () =
  let r = Ba_util.Rng.create 2 in
  for _ = 1 to 1_000 do
    let v = Ba_util.Rng.int_in r 10 20 in
    if v < 10 || v > 20 then Alcotest.failf "int_in out of range: %d" v
  done

let test_rng_float_range () =
  let r = Ba_util.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Ba_util.Rng.float r 3.0 in
    if v < 0. || v >= 3.0 then Alcotest.failf "float out of range: %f" v
  done

let test_rng_bernoulli_extremes () =
  let r = Ba_util.Rng.create 4 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Ba_util.Rng.bernoulli r 0.);
    check Alcotest.bool "p=1 always" true (Ba_util.Rng.bernoulli r 1.)
  done

let test_rng_bernoulli_rate () =
  let r = Ba_util.Rng.create 4 in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Ba_util.Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  if abs_float (rate -. 0.3) > 0.01 then Alcotest.failf "bernoulli rate %f too far from 0.3" rate

let test_rng_exponential_mean () =
  let r = Ba_util.Rng.create 6 in
  let sum = ref 0. in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Ba_util.Rng.exponential r 50.
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 50.) > 2. then Alcotest.failf "exponential mean %f too far from 50" mean

let test_rng_geometric () =
  let r = Ba_util.Rng.create 8 in
  check Alcotest.int "p=1 gives 0" 0 (Ba_util.Rng.geometric r 1.0);
  let sum = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    sum := !sum + Ba_util.Rng.geometric r 0.5
  done;
  (* Mean of failures-before-success at p=0.5 is 1. *)
  let mean = float_of_int !sum /. float_of_int n in
  if abs_float (mean -. 1.0) > 0.05 then Alcotest.failf "geometric mean %f too far from 1" mean

let test_rng_shuffle_permutation () =
  let r = Ba_util.Rng.create 12 in
  let a = Array.init 100 (fun i -> i) in
  Ba_util.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation" (Array.init 100 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Ba_util.Heap.create ~cmp:compare () in
  check Alcotest.bool "empty" true (Ba_util.Heap.is_empty h);
  List.iter (Ba_util.Heap.push h) [ 5; 1; 4; 2; 3 ];
  check Alcotest.int "length" 5 (Ba_util.Heap.length h);
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Ba_util.Heap.peek h);
  let drained = List.init 5 (fun _ -> Option.get (Ba_util.Heap.pop h)) in
  check (Alcotest.list Alcotest.int) "sorted drain" [ 1; 2; 3; 4; 5 ] drained;
  check (Alcotest.option Alcotest.int) "pop empty" None (Ba_util.Heap.pop h)

let test_heap_fifo_ties () =
  (* Equal keys must pop in insertion order — the engine depends on it. *)
  let h = Ba_util.Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) () in
  List.iter (Ba_util.Heap.push h) [ (1, "a"); (0, "x"); (1, "b"); (1, "c") ];
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
    "ties FIFO"
    [ (0, "x"); (1, "a"); (1, "b"); (1, "c") ]
    (Ba_util.Heap.to_sorted_list h)

let test_heap_to_sorted_nondestructive () =
  let h = Ba_util.Heap.create ~cmp:compare () in
  List.iter (Ba_util.Heap.push h) [ 3; 1; 2 ];
  ignore (Ba_util.Heap.to_sorted_list h);
  check Alcotest.int "length preserved" 3 (Ba_util.Heap.length h)

let test_heap_clear () =
  let h = Ba_util.Heap.create ~cmp:compare () in
  List.iter (Ba_util.Heap.push h) [ 1; 2 ];
  Ba_util.Heap.clear h;
  check Alcotest.bool "cleared" true (Ba_util.Heap.is_empty h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Ba_util.Heap.create ~cmp:compare () in
      List.iter (Ba_util.Heap.push h) xs;
      Ba_util.Heap.to_sorted_list h = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Modseq *)

let test_modseq_wrap () =
  check Alcotest.int "wrap pos" 3 (Ba_util.Modseq.wrap ~n:8 11);
  check Alcotest.int "wrap neg" 5 (Ba_util.Modseq.wrap ~n:8 (-3));
  check Alcotest.int "wrap zero" 0 (Ba_util.Modseq.wrap ~n:8 0);
  check Alcotest.int "wrap exact" 0 (Ba_util.Modseq.wrap ~n:8 8)

let test_modseq_succ_add_sub () =
  check Alcotest.int "succ wraps" 0 (Ba_util.Modseq.succ ~n:4 3);
  check Alcotest.int "add" 1 (Ba_util.Modseq.add ~n:4 3 2);
  check Alcotest.int "sub" 3 (Ba_util.Modseq.sub ~n:4 1 2)

let test_modseq_distance () =
  check Alcotest.int "forward" 3 (Ba_util.Modseq.distance ~n:8 2 5);
  check Alcotest.int "wraparound" 5 (Ba_util.Modseq.distance ~n:8 5 2);
  check Alcotest.int "self" 0 (Ba_util.Modseq.distance ~n:8 4 4)

let test_modseq_in_window () =
  check Alcotest.bool "inside" true (Ba_util.Modseq.in_window ~n:8 ~lo:6 ~size:4 1);
  check Alcotest.bool "lower bound" true (Ba_util.Modseq.in_window ~n:8 ~lo:6 ~size:4 6);
  check Alcotest.bool "past end" false (Ba_util.Modseq.in_window ~n:8 ~lo:6 ~size:4 2);
  check Alcotest.bool "before" false (Ba_util.Modseq.in_window ~n:8 ~lo:6 ~size:4 5)

let test_modseq_reconstruct_examples () =
  (* The paper's band: x <= y < x + n. *)
  check Alcotest.int "same block" 13 (Ba_util.Modseq.reconstruct ~n:8 ~ref_:10 5);
  check Alcotest.int "next block" 17 (Ba_util.Modseq.reconstruct ~n:8 ~ref_:10 1);
  check Alcotest.int "at anchor" 10 (Ba_util.Modseq.reconstruct ~n:8 ~ref_:10 2);
  check Alcotest.int "zero anchor" 6 (Ba_util.Modseq.reconstruct ~n:8 ~ref_:0 6)

let prop_modseq_reconstruct =
  (* Paper equations 12-14: f(x, y mod n) = y whenever 0 <= x <= y < x + n. *)
  QCheck.Test.make ~name:"reconstruct recovers y in the band" ~count:2000
    QCheck.(triple (int_bound 10_000) (int_bound 500) (int_range 1 64))
    (fun (x, offset, n) ->
      QCheck.assume (offset < n);
      let y = x + offset in
      Ba_util.Modseq.reconstruct ~n ~ref_:x (y mod n) = y)

let prop_modseq_reconstruct_outside =
  (* Outside the band the reconstruction must NOT equal y (it aliases). *)
  QCheck.Test.make ~name:"reconstruct aliases outside the band" ~count:2000
    QCheck.(triple (int_bound 10_000) (int_range 0 500) (int_range 1 64))
    (fun (x, extra, n) ->
      let y = x + n + extra in
      Ba_util.Modseq.reconstruct ~n ~ref_:x (y mod n) <> y)

let prop_modseq_distance_inverse =
  QCheck.Test.make ~name:"distance is add-inverse" ~count:1000
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_range 1 64))
    (fun (a, b, n) ->
      let a = a mod n and b = b mod n in
      Ba_util.Modseq.add ~n a (Ba_util.Modseq.distance ~n a b) = b)

(* ------------------------------------------------------------------ *)
(* Ring_buffer *)

let test_ring_set_get () =
  let rb = Ba_util.Ring_buffer.create 4 in
  Ba_util.Ring_buffer.set rb 0 "a";
  Ba_util.Ring_buffer.set rb 3 "d";
  check (Alcotest.option Alcotest.string) "get 0" (Some "a") (Ba_util.Ring_buffer.get rb 0);
  check (Alcotest.option Alcotest.string) "get 3" (Some "d") (Ba_util.Ring_buffer.get rb 3);
  check (Alcotest.option Alcotest.string) "absent" None (Ba_util.Ring_buffer.get rb 1);
  check Alcotest.int "occupancy" 2 (Ba_util.Ring_buffer.occupancy rb)

let test_ring_wraparound () =
  let rb = Ba_util.Ring_buffer.create 4 in
  Ba_util.Ring_buffer.set rb 2 "x";
  Ba_util.Ring_buffer.remove rb 2;
  Ba_util.Ring_buffer.set rb 6 "y";
  (* 6 mod 4 = 2: same slot, different absolute index. *)
  check (Alcotest.option Alcotest.string) "new index" (Some "y") (Ba_util.Ring_buffer.get rb 6);
  check (Alcotest.option Alcotest.string) "old index gone" None (Ba_util.Ring_buffer.get rb 2)

let test_ring_collision () =
  let rb = Ba_util.Ring_buffer.create 4 in
  Ba_util.Ring_buffer.set rb 1 "a";
  Alcotest.check_raises "slot collision" (Invalid_argument "Ring_buffer.set: slot collision (index 5 vs live 1, capacity 4)")
    (fun () -> Ba_util.Ring_buffer.set rb 5 "b")

let test_ring_overwrite_same_index () =
  let rb = Ba_util.Ring_buffer.create 4 in
  Ba_util.Ring_buffer.set rb 1 "a";
  Ba_util.Ring_buffer.set rb 1 "b";
  check (Alcotest.option Alcotest.string) "overwritten" (Some "b") (Ba_util.Ring_buffer.get rb 1);
  check Alcotest.int "occupancy stays 1" 1 (Ba_util.Ring_buffer.occupancy rb)

let test_ring_remove_and_iter () =
  let rb = Ba_util.Ring_buffer.create 8 in
  List.iter (fun i -> Ba_util.Ring_buffer.set rb i (string_of_int i)) [ 0; 1; 2; 3 ];
  Ba_util.Ring_buffer.remove rb 1;
  Ba_util.Ring_buffer.remove rb 1;
  (* idempotent *)
  check Alcotest.int "occupancy after remove" 3 (Ba_util.Ring_buffer.occupancy rb);
  let collected = ref [] in
  Ba_util.Ring_buffer.iter (fun i v -> collected := (i, v) :: !collected) rb;
  check Alcotest.int "iter count" 3 (List.length !collected)

let test_ring_clear () =
  let rb = Ba_util.Ring_buffer.create 4 in
  Ba_util.Ring_buffer.set rb 0 "a";
  Ba_util.Ring_buffer.clear rb;
  check Alcotest.int "cleared" 0 (Ba_util.Ring_buffer.occupancy rb);
  check Alcotest.bool "mem false" false (Ba_util.Ring_buffer.mem rb 0)

let test_ring_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Ring_buffer.create: capacity must be positive") (fun () ->
      ignore (Ba_util.Ring_buffer.create 0))

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let b = Ba_util.Bitset.create () in
  check Alcotest.bool "initially empty" false (Ba_util.Bitset.mem b 0);
  Ba_util.Bitset.set b 0;
  Ba_util.Bitset.set b 63;
  Ba_util.Bitset.set b 64;
  check Alcotest.bool "mem 0" true (Ba_util.Bitset.mem b 0);
  check Alcotest.bool "mem 63" true (Ba_util.Bitset.mem b 63);
  check Alcotest.bool "mem 64" true (Ba_util.Bitset.mem b 64);
  check Alcotest.bool "mem 1" false (Ba_util.Bitset.mem b 1);
  check Alcotest.int "cardinal" 3 (Ba_util.Bitset.cardinal b)

let test_bitset_growth () =
  let b = Ba_util.Bitset.create ~initial_capacity:1 () in
  Ba_util.Bitset.set b 10_000;
  check Alcotest.bool "grown" true (Ba_util.Bitset.mem b 10_000);
  check Alcotest.bool "beyond capacity false" false (Ba_util.Bitset.mem b 20_000)

let test_bitset_unset () =
  let b = Ba_util.Bitset.create () in
  Ba_util.Bitset.set b 5;
  Ba_util.Bitset.set b 5;
  check Alcotest.int "idempotent set" 1 (Ba_util.Bitset.cardinal b);
  Ba_util.Bitset.unset b 5;
  check Alcotest.bool "unset" false (Ba_util.Bitset.mem b 5);
  Ba_util.Bitset.unset b 5;
  check Alcotest.int "idempotent unset" 0 (Ba_util.Bitset.cardinal b)

let test_bitset_iter_order () =
  let b = Ba_util.Bitset.create () in
  List.iter (Ba_util.Bitset.set b) [ 100; 3; 64; 7 ];
  let collected = ref [] in
  Ba_util.Bitset.iter (fun i -> collected := i :: !collected) b;
  check (Alcotest.list Alcotest.int) "increasing order" [ 3; 7; 64; 100 ] (List.rev !collected);
  check (Alcotest.option Alcotest.int) "max" (Some 100) (Ba_util.Bitset.max_set b)

let prop_bitset_matches_reference =
  QCheck.Test.make ~name:"bitset agrees with a reference set" ~count:200
    QCheck.(list (pair bool (int_bound 500)))
    (fun ops ->
      let b = Ba_util.Bitset.create () in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Ba_util.Bitset.set b i;
            Hashtbl.replace reference i ()
          end
          else begin
            Ba_util.Bitset.unset b i;
            Hashtbl.remove reference i
          end)
        ops;
      Ba_util.Bitset.cardinal b = Hashtbl.length reference
      && List.for_all (fun i -> Ba_util.Bitset.mem b i = Hashtbl.mem reference i)
           (List.init 501 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_mean_var () =
  let s = Ba_util.Stats.create () in
  List.iter (Ba_util.Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check Alcotest.int "count" 8 (Ba_util.Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Ba_util.Stats.mean s);
  check (Alcotest.float 1e-9) "variance" (32. /. 7.) (Ba_util.Stats.variance s)

let test_stats_empty () =
  let s = Ba_util.Stats.create () in
  check (Alcotest.float 1e-9) "empty mean" 0. (Ba_util.Stats.mean s);
  check (Alcotest.float 1e-9) "empty variance" 0. (Ba_util.Stats.variance s)

let test_stats_percentile () =
  let s = Ba_util.Stats.create () in
  List.iter (Ba_util.Stats.add s) (List.init 101 float_of_int);
  check (Alcotest.float 1e-9) "p50" 50. (Ba_util.Stats.percentile s 0.5);
  check (Alcotest.float 1e-9) "p0" 0. (Ba_util.Stats.percentile s 0.);
  check (Alcotest.float 1e-9) "p100" 100. (Ba_util.Stats.percentile s 1.)

let test_stats_summary () =
  let s = Ba_util.Stats.create () in
  List.iter (Ba_util.Stats.add s) [ 1.; 2.; 3. ];
  let sum = Ba_util.Stats.summary s in
  check (Alcotest.float 1e-9) "min" 1. sum.Ba_util.Stats.min;
  check (Alcotest.float 1e-9) "max" 3. sum.Ba_util.Stats.max;
  check Alcotest.int "count" 3 sum.Ba_util.Stats.count

let test_stats_ci95 () =
  let mean, hw = Ba_util.Stats.ci95 [ 10.; 10.; 10. ] in
  check (Alcotest.float 1e-9) "ci mean" 10. mean;
  check (Alcotest.float 1e-9) "ci halfwidth zero" 0. hw;
  let mean1, hw1 = Ba_util.Stats.ci95 [ 5. ] in
  check (Alcotest.float 1e-9) "single mean" 5. mean1;
  check (Alcotest.float 1e-9) "single halfwidth" 0. hw1

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_binning () =
  let h = Ba_util.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Ba_util.Histogram.add h) [ 0.; 1.9; 2.; 9.9; 10.; 100.; -5. ];
  check Alcotest.int "total" 7 (Ba_util.Histogram.total h);
  let counts = Ba_util.Histogram.counts h in
  check Alcotest.int "bin0 (incl. below-range)" 3 counts.(0);
  check Alcotest.int "bin1" 1 counts.(1);
  check Alcotest.int "last bin (incl. overflow)" 3 counts.(4)

let test_histogram_ranges () =
  let h = Ba_util.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  let lo, hi = Ba_util.Histogram.bin_range h 2 in
  check (Alcotest.float 1e-9) "range lo" 4. lo;
  check (Alcotest.float 1e-9) "range hi" 6. hi

let test_histogram_render () =
  let h = Ba_util.Histogram.create ~lo:0. ~hi:4. ~bins:2 in
  List.iter (Ba_util.Histogram.add h) [ 1.; 1.; 3. ];
  let s = Ba_util.Histogram.render ~width:10 h in
  check Alcotest.bool "renders bars" true (String.length s > 0 && String.contains s '#')

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let s = Ba_util.Table.render ~headers:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  check Alcotest.int "line count" 5 (List.length lines);
  (* header, rule, 2 rows, trailing newline *)
  check Alcotest.bool "numeric right-aligned" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_pads_missing () =
  let s = Ba_util.Table.render ~headers:[ "a"; "b" ] [ [ "x" ] ] in
  check Alcotest.bool "no exception and content present" true (String.length s > 0)

let test_table_fmt_float () =
  check Alcotest.string "default decimals" "1.500" (Ba_util.Table.fmt_float 1.5);
  check Alcotest.string "custom decimals" "1.50" (Ba_util.Table.fmt_float ~decimals:2 1.5)

(* ------------------------------------------------------------------ *)
(* Fqueue *)

let test_fqueue_fifo () =
  let q = Ba_util.Fqueue.empty in
  let q = Ba_util.Fqueue.push 1 q in
  let q = Ba_util.Fqueue.push 2 q in
  let q = Ba_util.Fqueue.push 3 q in
  check Alcotest.int "length" 3 (Ba_util.Fqueue.length q);
  match Ba_util.Fqueue.pop q with
  | Some (1, q') ->
      check (Alcotest.option Alcotest.int) "peek next" (Some 2) (Ba_util.Fqueue.peek q');
      check (Alcotest.list Alcotest.int) "to_list" [ 2; 3 ] (Ba_util.Fqueue.to_list q')
  | _ -> Alcotest.fail "expected pop of 1"

let prop_fqueue_matches_list =
  QCheck.Test.make ~name:"fqueue behaves like a list queue" ~count:300
    QCheck.(list (option small_int))
    (fun ops ->
      (* Some x = push x; None = pop. *)
      let q = ref Ba_util.Fqueue.empty and reference = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some x ->
              q := Ba_util.Fqueue.push x !q;
              reference := !reference @ [ x ]
          | None -> (
              match (Ba_util.Fqueue.pop !q, !reference) with
              | None, [] -> ()
              | Some (v, q'), r :: rest ->
                  if v <> r then ok := false;
                  q := q';
                  reference := rest
              | _ -> ok := false))
        ops;
      !ok && Ba_util.Fqueue.to_list !q = !reference)

(* ------------------------------------------------------------------ *)
(* Qsketch *)

module Qsketch = Ba_util.Qsketch

(* The documented accuracy contract: the sketch's estimate for q lands
   within 3/capacity of q in *rank* — i.e. the estimate sits between the
   exact (q - eps)- and (q + eps)-quantiles of the stream. Rank error is
   the right yardstick for a quantile sketch: value error is unbounded
   on heavy tails however good the sketch. *)
let rank_error_ok ~sorted ~sketch q =
  let eps = 3. /. float_of_int (Qsketch.capacity sketch) in
  let est = Qsketch.quantile sketch q in
  let exact p =
    let a = sorted and n = Array.length sorted in
    let pos = Stdlib.max 0. (Stdlib.min (float_of_int (n - 1)) (p *. float_of_int (n - 1))) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  in
  let lo = exact (Stdlib.max 0. (q -. eps)) and hi = exact (Stdlib.min 1. (q +. eps)) in
  if est < lo -. 1e-9 || est > hi +. 1e-9 then
    Alcotest.failf "q=%.2f estimate %.4f outside exact rank band [%.4f, %.4f]" q est lo hi

let sketch_of samples =
  let s = Qsketch.create () in
  Array.iter (Qsketch.add s) samples;
  s

let check_stream name samples =
  let s = sketch_of samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  check Alcotest.int (name ^ " count exact") (Array.length samples) (Qsketch.count s);
  check (Alcotest.float 1e-9) (name ^ " min exact") sorted.(0) (Qsketch.min s);
  check (Alcotest.float 1e-9) (name ^ " max exact")
    sorted.(Array.length sorted - 1)
    (Qsketch.max s);
  check Alcotest.bool (name ^ " bounded nodes") true (Qsketch.nodes s <= Qsketch.capacity s);
  List.iter (fun q -> rank_error_ok ~sorted ~sketch:s q) [ 0.5; 0.9; 0.99 ]

(* Accuracy on the three stream shapes the soak can produce: uniform
   noise, a heavy (Pareto-ish) latency tail, and the adversarial
   fully-sorted streams that bias naive merge rules. *)
let test_qsketch_uniform () =
  let rng = Ba_util.Rng.create 41 in
  check_stream "uniform" (Array.init 10_000 (fun _ -> Ba_util.Rng.float rng 1000.))

let test_qsketch_heavy_tail () =
  let rng = Ba_util.Rng.create 42 in
  check_stream "heavy tail"
    (Array.init 10_000 (fun _ ->
         let u = Stdlib.max 1e-6 (Ba_util.Rng.float rng 1.) in
         1. /. (u ** 1.5)))

let test_qsketch_sorted_adversarial () =
  check_stream "ascending" (Array.init 10_000 (fun i -> float_of_int i));
  check_stream "descending" (Array.init 10_000 (fun i -> float_of_int (10_000 - i)))

let test_qsketch_exact_when_small () =
  (* Below capacity nothing ever collapses: every sample is its own
     centroid and the quantiles are genuine order statistics. *)
  let s = Qsketch.create ~capacity:64 () in
  List.iter (Qsketch.add s) [ 5.; 1.; 3.; 2.; 4. ];
  check Alcotest.int "one node per sample" 5 (Qsketch.nodes s);
  check (Alcotest.float 1e-9) "median exact" 3. (Qsketch.quantile s 0.5);
  check (Alcotest.float 1e-9) "q0 is min" 1. (Qsketch.quantile s 0.);
  check (Alcotest.float 1e-9) "q1 is max" 5. (Qsketch.quantile s 1.)

let test_qsketch_flat_memory () =
  let s = Qsketch.create ~capacity:32 () in
  let probe = ref [] in
  for i = 1 to 100_000 do
    Qsketch.add s (float_of_int ((i * 7919) mod 1009));
    if i mod 10_000 = 0 then probe := (Qsketch.nodes s, Qsketch.mem_bytes s) :: !probe
  done;
  (* Saturated long ago: every probe reports the same node count and the
     same constant byte footprint. *)
  (match !probe with
  | [] -> Alcotest.fail "no probes"
  | (n0, b0) :: rest ->
      List.iter
        (fun (n, b) ->
          check Alcotest.int "node count flat" n0 n;
          check Alcotest.int "mem bytes flat" b0 b)
        rest);
  check Alcotest.int "count still exact" 100_000 (Qsketch.count s)

let test_qsketch_deterministic () =
  let build () =
    let s = Qsketch.create () in
    for i = 0 to 9_999 do
      Qsketch.add s (float_of_int ((i * 31) mod 977))
    done;
    (Qsketch.nodes s, Qsketch.quantile s 0.5, Qsketch.quantile s 0.99)
  in
  check
    Alcotest.(triple int (float 0.) (float 0.))
    "same stream, same sketch" (build ()) (build ())

let test_qsketch_validation () =
  Alcotest.check_raises "tiny capacity"
    (Invalid_argument "Qsketch.create: capacity must be >= 8") (fun () ->
      ignore (Qsketch.create ~capacity:4 ()));
  let s = Qsketch.create () in
  Alcotest.check_raises "empty quantile" (Invalid_argument "Qsketch.quantile: empty")
    (fun () -> ignore (Qsketch.quantile s 0.5));
  Qsketch.add s 1.;
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Qsketch.quantile: q out of [0, 1]") (fun () ->
      ignore (Qsketch.quantile s 1.5))

(* Merging must (a) conserve the exact tallies, (b) stay within the rank
   bound of the pooled stream, and (c) be associative up to that same
   bound — the property that lets per-round telemetry fold in any
   grouping (sequential, chunked, tree) to the same answer. *)
let prop_qsketch_merge_associative =
  QCheck.Test.make ~count:60 ~name:"merge is associative within the rank-error bound"
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Ba_util.Rng.create seed in
      let part () =
        Array.init
          (200 + Ba_util.Rng.int rng 800)
          (fun _ -> Ba_util.Rng.float rng 500. ** (1. +. Ba_util.Rng.float rng 1.))
      in
      let a = part () and b = part () and c = part () in
      let sa = sketch_of a and sb = sketch_of b and sc = sketch_of c in
      let left = Qsketch.merge (Qsketch.merge sa sb) sc in
      let right = Qsketch.merge sa (Qsketch.merge sb sc) in
      let pooled = Array.concat [ a; b; c ] in
      let sorted = Array.copy pooled in
      Array.sort compare sorted;
      Qsketch.count left = Array.length pooled
      && Qsketch.count right = Array.length pooled
      && Qsketch.min left = Qsketch.min right
      && Qsketch.max left = Qsketch.max right
      && List.for_all
           (fun q ->
             rank_error_ok ~sorted ~sketch:left q;
             rank_error_ok ~sorted ~sketch:right q;
             (* The two groupings agree with each other within twice the
                single-sketch band. *)
             let eps = 6. /. float_of_int (Qsketch.capacity left) in
             let n = Array.length sorted in
             let rank v =
               let r = ref 0 in
               Array.iter (fun x -> if x <= v then incr r) sorted;
               float_of_int !r /. float_of_int n
             in
             Float.abs (rank (Qsketch.quantile left q) -. rank (Qsketch.quantile right q))
             <= eps +. 1e-9)
           [ 0.5; 0.9; 0.99 ])

let test_qsketch_merge_exact_counts () =
  let a = sketch_of (Array.init 500 (fun i -> float_of_int i)) in
  let b = sketch_of (Array.init 300 (fun i -> float_of_int (1000 + i))) in
  let m = Qsketch.merge a b in
  check Alcotest.int "count sums" 800 (Qsketch.count m);
  check (Alcotest.float 1e-9) "min carries" 0. (Qsketch.min m);
  check (Alcotest.float 1e-9) "max carries" 1299. (Qsketch.max m);
  (* Inputs untouched. *)
  check Alcotest.int "left input intact" 500 (Qsketch.count a);
  check Alcotest.int "right input intact" 300 (Qsketch.count b)

let () =
  Alcotest.run "ba_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers all" `Quick test_rng_int_covers_all;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Slow test_rng_bernoulli_rate;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "geometric" `Slow test_rng_geometric;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "FIFO ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "to_sorted nondestructive" `Quick test_heap_to_sorted_nondestructive;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          qcheck prop_heap_sorts;
        ] );
      ( "modseq",
        [
          Alcotest.test_case "wrap" `Quick test_modseq_wrap;
          Alcotest.test_case "succ/add/sub" `Quick test_modseq_succ_add_sub;
          Alcotest.test_case "distance" `Quick test_modseq_distance;
          Alcotest.test_case "in_window" `Quick test_modseq_in_window;
          Alcotest.test_case "reconstruct examples" `Quick test_modseq_reconstruct_examples;
          qcheck prop_modseq_reconstruct;
          qcheck prop_modseq_reconstruct_outside;
          qcheck prop_modseq_distance_inverse;
        ] );
      ( "ring_buffer",
        [
          Alcotest.test_case "set/get" `Quick test_ring_set_get;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "collision" `Quick test_ring_collision;
          Alcotest.test_case "overwrite same index" `Quick test_ring_overwrite_same_index;
          Alcotest.test_case "remove and iter" `Quick test_ring_remove_and_iter;
          Alcotest.test_case "clear" `Quick test_ring_clear;
          Alcotest.test_case "invalid capacity" `Quick test_ring_invalid_capacity;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "growth" `Quick test_bitset_growth;
          Alcotest.test_case "unset" `Quick test_bitset_unset;
          Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
          qcheck prop_bitset_matches_reference;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "ci95" `Quick test_stats_ci95;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "ranges" `Quick test_histogram_ranges;
          Alcotest.test_case "render" `Quick test_histogram_render;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "pads missing" `Quick test_table_pads_missing;
          Alcotest.test_case "fmt_float" `Quick test_table_fmt_float;
        ] );
      ( "fqueue",
        [ Alcotest.test_case "fifo" `Quick test_fqueue_fifo; qcheck prop_fqueue_matches_list ] );
      ( "qsketch",
        [
          Alcotest.test_case "uniform stream" `Quick test_qsketch_uniform;
          Alcotest.test_case "heavy-tailed stream" `Quick test_qsketch_heavy_tail;
          Alcotest.test_case "sorted adversarial" `Quick test_qsketch_sorted_adversarial;
          Alcotest.test_case "exact below capacity" `Quick test_qsketch_exact_when_small;
          Alcotest.test_case "flat memory" `Quick test_qsketch_flat_memory;
          Alcotest.test_case "deterministic" `Quick test_qsketch_deterministic;
          Alcotest.test_case "validation" `Quick test_qsketch_validation;
          Alcotest.test_case "merge exact counts" `Quick test_qsketch_merge_exact_counts;
          qcheck prop_qsketch_merge_associative;
        ] );
    ]
