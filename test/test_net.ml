(* Transport backend tests: the wire codec round-trips every frame kind
   and rejects garbage without raising; the impairment shim replays a
   seed exactly; and a blockack transfer completes over real loopback
   UDP under 5% loss with duplication and reordering — delivering every
   payload exactly once, in order, with the workload digest intact. *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module Codec = Ba_transport.Codec
module Shim = Ba_transport.Shim
module Endpoint = Ba_transport.Endpoint
module Wire = Ba_proto.Wire
module Fault_plan = Ba_channel.Fault_plan

(* ------------------------------------------------------------------ *)
(* Codec round-trips *)

let payload_gen =
  QCheck.Gen.(
    frequency
      [
        (3, string_size (int_bound 64));
        (1, string_size (int_bound 2048));
        (1, return "");
      ])

let frame_gen =
  QCheck.Gen.(
    let nat = map abs int in
    let epoch = int_bound 5 in
    let* cls = int_bound 4 in
    match cls with
    | 0 ->
        let* seq = nat and* payload = payload_gen and* e = epoch in
        return (Codec.Data { (Wire.make_data_e ~epoch:e ~seq ~payload) with Wire.seq })
    | 1 ->
        let* e = epoch in
        return (Codec.Data (Wire.make_sync_req ~epoch:e))
    | 2 ->
        let* e = epoch in
        return (Codec.Data (Wire.make_sync_fin ~epoch:e))
    | 3 ->
        let* lo = nat and* hi = nat and* e = epoch in
        return (Codec.Ack (Wire.make_ack_e ~epoch:e ~lo ~hi))
    | _ ->
        let* pos = nat and* e = epoch in
        return (Codec.Ack (Wire.make_sync_pos ~epoch:e ~pos)))

let frame_print f =
  match f with
  | Codec.Data d -> Format.asprintf "%a" Wire.pp_data d
  | Codec.Ack a -> Format.asprintf "%a" Wire.pp_ack a

let frame_arb = QCheck.make ~print:frame_print frame_gen

let frame_eq a b =
  match (a, b) with
  | Codec.Data x, Codec.Data y ->
      x.Wire.seq = y.Wire.seq
      && String.equal x.Wire.payload y.Wire.payload
      && x.Wire.epoch = y.Wire.epoch && x.Wire.dkind = y.Wire.dkind
      && x.Wire.check = y.Wire.check
  | Codec.Ack x, Codec.Ack y ->
      x.Wire.lo = y.Wire.lo && x.Wire.hi = y.Wire.hi && x.Wire.epoch = y.Wire.epoch
      && x.Wire.akind = y.Wire.akind && x.Wire.check = y.Wire.check
  | _ -> false

let roundtrip =
  QCheck.Test.make ~name:"encode ∘ decode = id for every frame kind" ~count:500 frame_arb
    (fun f ->
      let buf = Bytes.create Codec.max_datagram in
      let len = Codec.encode buf f in
      match Codec.decode buf ~len with
      | Ok f' -> frame_eq f f' && Codec.frame_ok f' = Codec.frame_ok f
      | Error e -> QCheck.Test.fail_reportf "decode rejected own encoding: %s" e)

let roundtrip_checksum =
  QCheck.Test.make ~name:"constructor-built frames stay valid through the wire" ~count:300
    frame_arb (fun f ->
      (* make_* computes the checksum, so round-tripped frames validate —
         except Data frames whose seq we overwrote to exercise big
         sequence numbers; skip those. *)
      let built_ok = Codec.frame_ok f in
      let buf = Bytes.create Codec.max_datagram in
      let len = Codec.encode buf f in
      match Codec.decode buf ~len with
      | Ok f' -> Codec.frame_ok f' = built_ok
      | Error e -> QCheck.Test.fail_reportf "decode rejected own encoding: %s" e)

let exact_buffer () =
  let f = Codec.Data (Wire.make_data_e ~epoch:3 ~seq:41 ~payload:"hello") in
  let n = Codec.encoded_len f in
  let buf = Bytes.create n in
  check Alcotest.int "encode fills the exact buffer" n (Codec.encode buf f);
  (match Codec.decode buf ~len:n with
  | Ok f' -> check Alcotest.bool "roundtrip" true (frame_eq f f')
  | Error e -> Alcotest.failf "decode: %s" e);
  match Codec.encode (Bytes.create (n - 1)) f with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode into a short buffer must raise"

(* ------------------------------------------------------------------ *)
(* decode never raises, and rejects what it must *)

let never_raises_random =
  QCheck.Test.make ~name:"decode never raises on random bytes" ~count:2000
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun s ->
      let buf = Bytes.of_string s in
      match Codec.decode buf ~len:(Bytes.length buf) with
      | Ok f ->
          (* A random blob that parses must still face the checksum. *)
          ignore (Codec.frame_ok f);
          true
      | Error _ -> true)

let rejects_truncation =
  QCheck.Test.make ~name:"decode rejects every truncation of a valid frame" ~count:200
    frame_arb (fun f ->
      let buf = Bytes.create Codec.max_datagram in
      let len = Codec.encode buf f in
      let ok = ref true in
      for cut = 0 to len - 1 do
        match Codec.decode buf ~len:cut with
        | Ok _ -> ok := false
        | Error _ -> ()
      done;
      !ok)

let never_raises_bitflips =
  QCheck.Test.make ~name:"decode survives any single bit flip" ~count:300
    QCheck.(pair frame_arb (int_bound 10_000))
    (fun (f, r) ->
      let buf = Bytes.create Codec.max_datagram in
      let len = Codec.encode buf f in
      let bit = r mod (len * 8) in
      let pos = bit / 8 in
      Bytes.set_uint8 buf pos (Bytes.get_uint8 buf pos lxor (1 lsl (bit mod 8)));
      match Codec.decode buf ~len with
      | Ok f' ->
          (* Parsed despite the flip: either the flip hit a don't-care
             re-encoding of the same frame or the checksum catches it. *)
          ignore (Codec.frame_ok f');
          true
      | Error _ -> true)

let rejects_padding () =
  let f = Codec.Ack (Wire.make_ack_e ~epoch:0 ~lo:1 ~hi:4) in
  let buf = Bytes.create Codec.max_datagram in
  let len = Codec.encode buf f in
  (match Codec.decode buf ~len:(len + 8) with
  | Ok _ -> Alcotest.fail "padded ack must be rejected"
  | Error _ -> ());
  let d = Codec.Data (Wire.make_data_e ~epoch:0 ~seq:0 ~payload:"xy") in
  let dlen = Codec.encode buf d in
  match Codec.decode buf ~len:(dlen + 1) with
  | Ok _ -> Alcotest.fail "padded data must be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Shim determinism *)

let shim_trace ~seed ~plan n =
  let engine = Ba_sim.Engine.create ~seed:1 () in
  let out = ref [] in
  let shim =
    Shim.create engine ~plan ~seed
      ~transmit:(fun buf len -> out := Bytes.sub_string buf 0 len :: !out)
      ()
  in
  let buf = Bytes.create Codec.max_datagram in
  for i = 0 to n - 1 do
    let len =
      Codec.encode buf (Codec.Data (Wire.make_data_e ~epoch:0 ~seq:i ~payload:"payload"))
    in
    Shim.send shim buf len
  done;
  (* Flush delayed copies. *)
  Ba_sim.Engine.run engine;
  (List.rev !out, Shim.stats shim)

let shim_replay () =
  let plan =
    match Fault_plan.of_string "ge(0.1->0.3,l=0.08/0.4)+dup(0.05x2)+corr(0.04)+spike(0.05,+40)" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let t1, s1 = shim_trace ~seed:77 ~plan 500 in
  let t2, s2 = shim_trace ~seed:77 ~plan 500 in
  check Alcotest.bool "same seed, same datagram stream" true (t1 = t2);
  check Alcotest.bool "same seed, same stats" true (s1 = s2);
  if s1.Shim.dropped = 0 then Alcotest.fail "plan injected no loss";
  if s1.Shim.corrupted = 0 then Alcotest.fail "plan injected no corruption";
  let t3, _ = shim_trace ~seed:78 ~plan 500 in
  check Alcotest.bool "different seed, different stream" false (t1 = t3)

let shim_gate () =
  let engine = Ba_sim.Engine.create ~seed:1 () in
  let passed = ref 0 in
  let shim = Shim.create engine ~seed:1 ~transmit:(fun _ _ -> incr passed) () in
  let buf = Bytes.create 8 in
  Shim.send shim buf 8;
  Shim.gate shim true;
  Shim.send shim buf 8;
  Shim.send shim buf 8;
  Shim.gate shim false;
  Shim.send shim buf 8;
  check Alcotest.int "gated sends are discarded" 2 !passed;
  check Alcotest.int "and counted" 2 (Shim.stats shim).Shim.gated

(* ------------------------------------------------------------------ *)
(* Real loopback UDP *)

let entry name =
  match Ba_registry.Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "unknown protocol %s" name

let pair ?plan ?(messages = 120) ?(payload_size = 32) name =
  let e = entry name in
  let config = Ba_registry.Registry.config e () in
  Endpoint.Pair.run ~protocol:e.Ba_registry.Registry.protocol ~config ~messages
    ~payload_size ~wseed:7 ?plan ~impair_seed:11 ~tick_us:200 ~deadline_s:30. ()

let assert_clean name (o : Endpoint.Pair.outcome) =
  if not o.Endpoint.Pair.completed then
    Alcotest.failf "%s: loopback transfer did not complete (delivered %d)" name
      o.Endpoint.Pair.delivered;
  check Alcotest.int (name ^ ": duplicates") 0 o.Endpoint.Pair.duplicates;
  check Alcotest.int (name ^ ": misordered") 0 o.Endpoint.Pair.misordered;
  check Alcotest.int (name ^ ": corrupted") 0 o.Endpoint.Pair.corrupted;
  check Alcotest.bool (name ^ ": digest") true
    (o.Endpoint.Pair.digest = o.Endpoint.Pair.digest_expected)

let loopback_clean () = assert_clean "blockack/clean" (pair "blockack")

let loopback_impaired () =
  let plan =
    match Fault_plan.of_string "ge(0.02->0.3,l=0.05/0.3)+dup(0.03x2)+spike(0.03,+30)" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let o = pair ~plan "blockack" in
  assert_clean "blockack/5% loss" o;
  let s = o.Endpoint.Pair.client_shim in
  if s.Shim.dropped + o.Endpoint.Pair.server_shim.Shim.dropped = 0 then
    Alcotest.fail "impairment was configured but nothing was dropped"

let loopback_baseline () = assert_clean "go-back-n/clean" (pair ~messages:60 "go-back-n")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "codec",
        [
          qcheck roundtrip;
          qcheck roundtrip_checksum;
          Alcotest.test_case "exact buffer sizes" `Quick exact_buffer;
          qcheck never_raises_random;
          qcheck rejects_truncation;
          qcheck never_raises_bitflips;
          Alcotest.test_case "padding rejected" `Quick rejects_padding;
        ] );
      ( "shim",
        [
          Alcotest.test_case "seeded replay is exact" `Quick shim_replay;
          Alcotest.test_case "quarantine gate" `Quick shim_gate;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "blockack clean link" `Quick loopback_clean;
          Alcotest.test_case "blockack under 5% loss" `Quick loopback_impaired;
          Alcotest.test_case "go-back-n clean link" `Quick loopback_baseline;
        ] );
    ]
