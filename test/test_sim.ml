(* Tests for the discrete-event engine and timers. *)

let check = Alcotest.check

module Engine = Ba_sim.Engine
module Timer = Ba_sim.Timer

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_starts_at_zero () =
  let e = Engine.create () in
  check Alcotest.int "t=0" 0 (Engine.now e)

let test_engine_event_order () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule e ~delay:30 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule e ~delay:10 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule e ~delay:20 (fun () -> order := 2 :: !order));
  Engine.run e;
  check (Alcotest.list Alcotest.int) "time order" [ 1; 2; 3 ] (List.rev !order);
  check Alcotest.int "clock at last event" 30 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~delay:10 (fun () -> order := i :: !order))
  done;
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO at same tick" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule e ~delay:5 (fun () ->
         fired := ("outer", Engine.now e) :: !fired;
         ignore (Engine.schedule e ~delay:7 (fun () -> fired := ("inner", Engine.now e) :: !fired))));
  Engine.run e;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "nested event fires later"
    [ ("outer", 5); ("inner", 12) ]
    (List.rev !fired)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:10 (fun () -> fired := true) in
  check Alcotest.bool "pending before" true (Engine.is_pending h);
  Engine.cancel h;
  check Alcotest.bool "not pending after" false (Engine.is_pending h);
  Engine.run e;
  check Alcotest.bool "cancelled did not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:10 (fun () -> fired := 10 :: !fired));
  ignore (Engine.schedule e ~delay:100 (fun () -> fired := 100 :: !fired));
  Engine.run ~until:50 e;
  check (Alcotest.list Alcotest.int) "only early event" [ 10 ] (List.rev !fired);
  check Alcotest.int "clock advanced to horizon" 50 (Engine.now e);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "late event after resume" [ 10; 100 ] (List.rev !fired)

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule e ~delay:1 (fun () -> incr count))
  done;
  Engine.run ~max_events:4 e;
  check Alcotest.int "budget respected" 4 !count

let test_engine_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:i (fun () ->
        incr count;
        if !count = 3 then Engine.stop e))
  done;
  Engine.run e;
  check Alcotest.int "stopped mid-run" 3 !count;
  Engine.run e;
  check Alcotest.int "resumable" 10 !count

let test_engine_step () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:2 (fun () -> incr fired));
  check Alcotest.bool "step fires one" true (Engine.step e);
  check Alcotest.int "one fired" 1 !fired;
  check Alcotest.bool "step fires second" true (Engine.step e);
  check Alcotest.bool "empty returns false" false (Engine.step e)

let test_engine_past_schedule_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:10 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~at:5 (fun () -> ())));
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1) (fun () -> ())))

let test_engine_pending_count () =
  let e = Engine.create () in
  let h1 = Engine.schedule e ~delay:10 (fun () -> ()) in
  let _h2 = Engine.schedule e ~delay:20 (fun () -> ()) in
  check Alcotest.int "two pending" 2 (Engine.pending_events e);
  Engine.cancel h1;
  check Alcotest.int "one pending after cancel" 1 (Engine.pending_events e);
  Engine.run e;
  check Alcotest.int "none pending after run" 0 (Engine.pending_events e)

(* The pending counter must stay exact across arbitrary interleavings of
   schedule / cancel / fire — it is maintained incrementally (O(1) reads),
   so any drift would go unnoticed by the hot path itself. *)
let test_engine_pending_incremental () =
  let e = Engine.create () in
  let handles = Array.init 100 (fun i -> Engine.schedule e ~delay:(10 + i) (fun () -> ())) in
  check Alcotest.int "all scheduled" 100 (Engine.pending_events e);
  for i = 0 to 49 do
    Engine.cancel handles.(2 * i)
  done;
  check Alcotest.int "half cancelled" 50 (Engine.pending_events e);
  (* Double-cancel must not double-count. *)
  Engine.cancel handles.(0);
  check Alcotest.int "idempotent cancel" 50 (Engine.pending_events e);
  Engine.run ~max_events:20 e;
  check Alcotest.int "fired events drain the count" 30 (Engine.pending_events e);
  (* Cancel-after-fire is a no-op on the counter. *)
  Engine.cancel handles.(1);
  check Alcotest.int "cancel of fired event ignored" 30 (Engine.pending_events e);
  ignore (Engine.schedule e ~delay:1000 (fun () -> ()));
  check Alcotest.int "schedule adds" 31 (Engine.pending_events e);
  Engine.run e;
  check Alcotest.int "empty at the end" 0 (Engine.pending_events e);
  check Alcotest.int "heap fully drained" 0 (Engine.queue_length e)

let test_engine_compaction () =
  let e = Engine.create () in
  let n = 10_000 in
  let fired = ref 0 in
  let handles = Array.init n (fun i -> Engine.schedule e ~delay:(1 + i) (fun () -> incr fired)) in
  let keep = 16 in
  (* Cancel everything but a few: corpses vastly outnumber survivors, so
     the engine must rebuild the heap instead of hoarding dead entries. *)
  for i = keep to n - 1 do
    Engine.cancel handles.(i)
  done;
  check Alcotest.int "live count" keep (Engine.pending_events e);
  check Alcotest.bool
    (Printf.sprintf "heap compacted (len %d)" (Engine.queue_length e))
    true
    (Engine.queue_length e < n / 2);
  check Alcotest.bool "no live event lost" true (Engine.queue_length e >= keep);
  Engine.run e;
  check Alcotest.int "exactly the survivors fired" keep !fired;
  check Alcotest.int "clock at last survivor" keep (Engine.now e)

let test_engine_compaction_keeps_order () =
  let e = Engine.create () in
  let fired = ref [] in
  (* Many same-tick events: FIFO among equals must survive a compaction
     triggered between scheduling and firing. *)
  let keepers = List.init 8 (fun i -> i) in
  List.iter
    (fun i -> ignore (Engine.schedule e ~delay:10 (fun () -> fired := i :: !fired)))
    keepers;
  let victims = Array.init 2_000 (fun _ -> Engine.schedule e ~delay:5 (fun () -> ())) in
  Array.iter Engine.cancel victims;
  check Alcotest.bool "compacted" true (Engine.queue_length e < 100);
  Engine.run e;
  check (Alcotest.list Alcotest.int) "FIFO preserved across rebuild" keepers (List.rev !fired)

let test_engine_run_skips_cancelled_heads () =
  (* run and step share one corpse-skipping path (live_head); after a
     partial run that discards cancelled heads, the O(1) pending counter
     and the physical heap length must agree again. *)
  let e = Engine.create () in
  let fired = ref [] in
  let note i () = fired := i :: !fired in
  let h1 = Engine.schedule e ~delay:1 (note 1) in
  let h2 = Engine.schedule e ~delay:2 (note 2) in
  let _h3 = Engine.schedule e ~delay:3 (note 3) in
  let _h4 = Engine.schedule e ~delay:4 (note 4) in
  Engine.cancel h1;
  Engine.cancel h2;
  check Alcotest.int "pending after cancel" 2 (Engine.pending_events e);
  check Alcotest.int "corpses still queued" 4 (Engine.queue_length e);
  (* Stops before tick 4: the run must pop both corpses to reach the
     tick-3 survivor, then leave exactly the tick-4 event queued. *)
  Engine.run ~until:3 e;
  check Alcotest.(list int) "only survivor fired" [ 3 ] !fired;
  check Alcotest.int "pending after partial run" 1 (Engine.pending_events e);
  check Alcotest.int "queue matches pending (corpses gone)" 1 (Engine.queue_length e);
  Engine.run e;
  check Alcotest.(list int) "remaining survivor fired" [ 4; 3 ] !fired;
  check Alcotest.int "drained pending" 0 (Engine.pending_events e);
  check Alcotest.int "drained queue" 0 (Engine.queue_length e)

let test_engine_step_skips_cancelled_heads () =
  let e = Engine.create () in
  let fired = ref 0 in
  let a = Engine.schedule e ~delay:1 ignore in
  let b = Engine.schedule e ~delay:2 ignore in
  let _c = Engine.schedule e ~delay:3 (fun () -> incr fired) in
  Engine.cancel a;
  Engine.cancel b;
  check Alcotest.bool "step fires past corpses" true (Engine.step e);
  check Alcotest.int "survivor fired" 1 !fired;
  check Alcotest.int "clock at survivor" 3 (Engine.now e);
  check Alcotest.int "queue drained" 0 (Engine.queue_length e);
  check Alcotest.int "pending drained" 0 (Engine.pending_events e);
  check Alcotest.bool "no more events" false (Engine.step e)

let test_engine_determinism () =
  let trace seed =
    let e = Engine.create ~seed () in
    let log = ref [] in
    let rec churn () =
      if Engine.now e < 500 then begin
        let d = 1 + Ba_util.Rng.int (Engine.rng e) 20 in
        log := (Engine.now e, d) :: !log;
        ignore (Engine.schedule e ~delay:d churn)
      end
    in
    churn ();
    Engine.run e;
    !log
  in
  check Alcotest.bool "same seed same trace" true (trace 5 = trace 5);
  check Alcotest.bool "different seed different trace" true (trace 5 <> trace 6)

(* ------------------------------------------------------------------ *)
(* Timer *)

let test_timer_fires_once () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.create e ~duration:25 (fun () -> incr fired) in
  Timer.start t;
  Engine.run e;
  check Alcotest.int "fired once" 1 !fired;
  check Alcotest.int "at duration" 25 (Engine.now e)

let test_timer_restart_extends () =
  let e = Engine.create () in
  let fired_at = ref (-1) in
  let t = Timer.create e ~duration:30 (fun () -> fired_at := Engine.now e) in
  Timer.start t;
  ignore (Engine.schedule e ~delay:20 (fun () -> Timer.start t));
  Engine.run e;
  check Alcotest.int "restart pushed expiry" 50 !fired_at

let test_timer_stop () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Timer.create e ~duration:10 (fun () -> fired := true) in
  Timer.start t;
  Timer.stop t;
  Engine.run e;
  check Alcotest.bool "stopped" false !fired;
  check Alcotest.bool "not armed" false (Timer.is_armed t)

let test_timer_start_for () =
  let e = Engine.create () in
  let fired_at = ref (-1) in
  let t = Timer.create e ~duration:100 (fun () -> fired_at := Engine.now e) in
  Timer.start_for t 7;
  Engine.run e;
  check Alcotest.int "one-off duration" 7 !fired_at;
  check Alcotest.int "default unchanged" 100 (Timer.duration t)

let test_timer_set_duration () =
  let e = Engine.create () in
  let fired_at = ref (-1) in
  let t = Timer.create e ~duration:100 (fun () -> fired_at := Engine.now e) in
  Timer.set_duration t 40;
  Timer.start t;
  Engine.run e;
  check Alcotest.int "new duration" 40 !fired_at

let test_timer_remaining () =
  let e = Engine.create () in
  let t = Timer.create e ~duration:50 (fun () -> ()) in
  check (Alcotest.option Alcotest.int) "stopped: none" None (Timer.remaining t);
  Timer.start t;
  check (Alcotest.option Alcotest.int) "full remaining" (Some 50) (Timer.remaining t);
  ignore
    (Engine.schedule e ~delay:20 (fun () ->
         check (Alcotest.option Alcotest.int) "partial remaining" (Some 30) (Timer.remaining t)));
  Engine.run e

let test_timer_rearm_in_callback () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec t =
    lazy
      (Timer.create e ~duration:10 (fun () ->
           incr count;
           if !count < 3 then Timer.start (Lazy.force t)))
  in
  Timer.start (Lazy.force t);
  Engine.run e;
  check Alcotest.int "periodic rearm" 3 !count;
  check Alcotest.int "final time" 30 (Engine.now e)

let () =
  Alcotest.run "ba_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "starts at zero" `Quick test_engine_starts_at_zero;
          Alcotest.test_case "event order" `Quick test_engine_event_order;
          Alcotest.test_case "same-time FIFO" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max_events" `Quick test_engine_max_events;
          Alcotest.test_case "stop" `Quick test_engine_stop;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "past schedule rejected" `Quick test_engine_past_schedule_rejected;
          Alcotest.test_case "pending count" `Quick test_engine_pending_count;
          Alcotest.test_case "pending counter incremental" `Quick test_engine_pending_incremental;
          Alcotest.test_case "dead-event compaction" `Quick test_engine_compaction;
          Alcotest.test_case "compaction keeps FIFO" `Quick test_engine_compaction_keeps_order;
          Alcotest.test_case "run skips cancelled heads" `Quick
            test_engine_run_skips_cancelled_heads;
          Alcotest.test_case "step skips cancelled heads" `Quick
            test_engine_step_skips_cancelled_heads;
          Alcotest.test_case "determinism" `Quick test_engine_determinism;
        ] );
      ( "timer",
        [
          Alcotest.test_case "fires once" `Quick test_timer_fires_once;
          Alcotest.test_case "restart extends" `Quick test_timer_restart_extends;
          Alcotest.test_case "stop" `Quick test_timer_stop;
          Alcotest.test_case "start_for" `Quick test_timer_start_for;
          Alcotest.test_case "set_duration" `Quick test_timer_set_duration;
          Alcotest.test_case "remaining" `Quick test_timer_remaining;
          Alcotest.test_case "rearm in callback" `Quick test_timer_rearm_in_callback;
        ] );
    ]
