(* The deterministic domain pool (also wired to the `parallel-smoke`
   alias): ordered collection, exception propagation, and the
   end-to-end guarantee the campaign runners advertise — a chaos
   campaign or scaling sweep is structurally identical at --jobs 1 and
   --jobs 4, even on a single-core host. *)

let check = Alcotest.check

module Pool = Ba_parallel.Pool
module Chaos = Ba_verify.Chaos
module E = Ba_experiments.Experiments

let test_map_matches_list_map () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) - (3 * x) in
  check
    Alcotest.(list int)
    "jobs=4 = List.map" (List.map f xs)
    (Pool.map ~jobs:4 f xs);
  check
    Alcotest.(list int)
    "jobs=1 = List.map" (List.map f xs)
    (Pool.map ~jobs:1 f xs)

let test_map_preserves_order () =
  (* Make late-submitted tasks finish first by giving early ones more
     work: ordered collection must not depend on completion order. *)
  let xs = List.init 64 Fun.id in
  let f x =
    let spin = (64 - x) * 2000 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := (!acc + i) land 0xffff
    done;
    ignore (Sys.opaque_identity !acc);
    x
  in
  check Alcotest.(list int) "input order" xs (Pool.map ~jobs:4 f xs)

exception Boom of int

let test_exception_propagates () =
  let xs = List.init 20 Fun.id in
  let run jobs =
    match Pool.map ~jobs (fun x -> if x mod 7 = 3 then raise (Boom x) else x) xs with
    | _ -> Alcotest.fail "expected Boom to propagate"
    | exception Boom x -> x
  in
  (* First failure in input order (3, not 10 or 17), at any job count. *)
  check Alcotest.int "jobs=1 first failure" 3 (run 1);
  check Alcotest.int "jobs=4 first failure" 3 (run 4)

let test_pool_reuse_across_batches () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check Alcotest.int "pool jobs" 3 (Pool.jobs pool);
      let a = Pool.run pool (List.init 10 (fun i () -> i * 2)) in
      let b = Pool.map ~pool string_of_int (List.init 5 Fun.id) in
      check Alcotest.(list int) "first batch" [ 0; 2; 4; 6; 8; 10; 12; 14; 16; 18 ] a;
      check Alcotest.(list string) "second batch" [ "0"; "1"; "2"; "3"; "4" ] b)

let test_invalid_jobs_rejected () =
  List.iter
    (fun jobs ->
      match Pool.create ~jobs () with
      | exception Invalid_argument _ -> ()
      | pool ->
          Pool.shutdown pool;
          Alcotest.failf "jobs=%d accepted" jobs)
    [ 0; -1 ]

let test_chaos_campaign_jobs_invariant () =
  let seeds = List.init 6 (fun i -> i + 1) in
  let run jobs =
    Chaos.run_campaign ~messages:20 ~seeds ~jobs ~config:Chaos.gbn_config
      Ba_baselines.Go_back_n.protocol
  in
  (* Reports are plain data, so structural equality covers every count,
     every class and the replayable first_failure cells. *)
  check Alcotest.bool "campaign identical at jobs 1 vs 4" true (run 1 = run 4)

let test_s1_sweep_jobs_invariant () =
  let a = E.s1_scaling ~jobs:1 ~quick:true () in
  let b = E.s1_scaling ~jobs:4 ~quick:true () in
  check Alcotest.(list (list string)) "S1 rows identical at jobs 1 vs 4" a.E.rows b.E.rows;
  check Alcotest.(list string) "S1 headers identical" a.E.headers b.E.headers

let test_t2_grid_jobs_invariant () =
  let a = E.t2_verification ~jobs:1 ~quick:true () in
  let b = E.t2_verification ~jobs:4 ~quick:true () in
  check Alcotest.(list (list string)) "T2 rows identical at jobs 1 vs 4" a.E.rows b.E.rows

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "order preserved under skew" `Quick test_map_preserves_order;
          Alcotest.test_case "exceptions propagate in order" `Quick test_exception_propagates;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse_across_batches;
          Alcotest.test_case "invalid jobs rejected" `Quick test_invalid_jobs_rejected;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "chaos campaign jobs-invariant" `Quick
            test_chaos_campaign_jobs_invariant;
          Alcotest.test_case "S1 sweep jobs-invariant" `Quick test_s1_sweep_jobs_invariant;
          Alcotest.test_case "T2 grid jobs-invariant" `Quick test_t2_grid_jobs_invariant;
        ] );
    ]
