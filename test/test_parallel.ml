(* The deterministic domain pool (also wired to the `parallel-smoke`
   alias): ordered collection, exception propagation, and the
   end-to-end guarantee the campaign runners advertise — a chaos
   campaign or scaling sweep is structurally identical at --jobs 1 and
   --jobs 4, even on a single-core host. *)

let check = Alcotest.check

module Pool = Ba_parallel.Pool
module Chaos = Ba_verify.Chaos
module E = Ba_experiments.Experiments

let test_map_matches_list_map () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) - (3 * x) in
  check
    Alcotest.(list int)
    "jobs=4 = List.map" (List.map f xs)
    (Pool.map ~jobs:4 f xs);
  check
    Alcotest.(list int)
    "jobs=1 = List.map" (List.map f xs)
    (Pool.map ~jobs:1 f xs)

let test_map_preserves_order () =
  (* Make late-submitted tasks finish first by giving early ones more
     work: ordered collection must not depend on completion order. *)
  let xs = List.init 64 Fun.id in
  let f x =
    let spin = (64 - x) * 2000 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := (!acc + i) land 0xffff
    done;
    ignore (Sys.opaque_identity !acc);
    x
  in
  check Alcotest.(list int) "input order" xs (Pool.map ~jobs:4 f xs)

exception Boom of int

let test_exception_propagates () =
  let xs = List.init 20 Fun.id in
  let run jobs =
    match Pool.map ~jobs (fun x -> if x mod 7 = 3 then raise (Boom x) else x) xs with
    | _ -> Alcotest.fail "expected Boom to propagate"
    | exception Boom x -> x
  in
  (* First failure in input order (3, not 10 or 17), at any job count. *)
  check Alcotest.int "jobs=1 first failure" 3 (run 1);
  check Alcotest.int "jobs=4 first failure" 3 (run 4)

let test_pool_reuse_across_batches () =
  Pool.with_pool ~jobs:3 (fun pool ->
      check Alcotest.int "pool jobs" 3 (Pool.jobs pool);
      let a = Pool.run pool (List.init 10 (fun i () -> i * 2)) in
      let b = Pool.map ~pool string_of_int (List.init 5 Fun.id) in
      check Alcotest.(list int) "first batch" [ 0; 2; 4; 6; 8; 10; 12; 14; 16; 18 ] a;
      check Alcotest.(list string) "second batch" [ "0"; "1"; "2"; "3"; "4" ] b)

let test_invalid_jobs_rejected () =
  List.iter
    (fun jobs ->
      match Pool.create ~jobs () with
      | exception Invalid_argument _ -> ()
      | pool ->
          Pool.shutdown pool;
          Alcotest.failf "jobs=%d accepted" jobs)
    [ 0; -1 ]

let test_chaos_campaign_jobs_invariant () =
  let seeds = List.init 6 (fun i -> i + 1) in
  let run jobs =
    Chaos.run_campaign ~messages:20 ~seeds ~jobs ~config:Chaos.gbn_config
      Ba_baselines.Go_back_n.protocol
  in
  (* Reports are plain data, so structural equality covers every count,
     every class and the replayable first_failure cells. *)
  check Alcotest.bool "campaign identical at jobs 1 vs 4" true (run 1 = run 4)

let test_map_chunks_matches_list_map () =
  let xs = List.init 257 Fun.id in
  let f x = (7 * x) - (x * x / 3) in
  List.iter
    (fun (jobs, chunk) ->
      check
        Alcotest.(list int)
        (Printf.sprintf "jobs=%d chunk=%s" jobs
           (match chunk with Some c -> string_of_int c | None -> "auto"))
        (List.map f xs)
        (Pool.map_chunks ~jobs ?chunk f xs))
    [ (1, None); (4, None); (4, Some 1); (4, Some 7); (4, Some 1000); (3, Some 64) ];
  check Alcotest.(list int) "empty input" [] (Pool.map_chunks ~jobs:4 f []);
  Pool.with_pool ~jobs:3 (fun pool ->
      check
        Alcotest.(list int)
        "explicit pool" (List.map f xs)
        (Pool.map_chunks ~pool f xs))

let test_map_chunks_exception_order () =
  let xs = List.init 50 Fun.id in
  List.iter
    (fun jobs ->
      match
        Pool.map_chunks ~jobs ~chunk:4
          (fun x -> if x mod 11 = 5 then raise (Boom x) else x)
          xs
      with
      | _ -> Alcotest.fail "expected Boom to propagate"
      | exception Boom x ->
          check Alcotest.int (Printf.sprintf "jobs=%d first failure" jobs) 5 x)
    [ 1; 4 ]

let test_jobs1_spawns_no_domain () =
  (* The zero-domain pin: sequential work must never pay for domains —
     not in [create], not in [map], not in [map_chunks]. *)
  let before = Pool.spawned_domains () in
  let pool = Pool.create ~jobs:1 () in
  Pool.shutdown pool;
  ignore (Pool.map ~jobs:1 succ (List.init 100 Fun.id));
  ignore (Pool.map_chunks ~jobs:1 succ (List.init 100 Fun.id));
  check Alcotest.int "jobs=1 spawned nothing" before (Pool.spawned_domains ());
  (* And whatever the requested parallelism, spawns are capped at the
     hardware: jobs=64 on an n-core host starts at most n-1 domains. *)
  let cap = max 0 (Domain.recommended_domain_count () - 1) in
  Pool.with_pool ~jobs:64 (fun _ -> ());
  check Alcotest.bool "spawns capped at hardware" true
    (Pool.spawned_domains () - before <= cap)

let test_jobs_clamped_at_max () =
  check Alcotest.int "max_jobs = 4x hardware" (4 * Domain.recommended_domain_count ())
    (Pool.max_jobs ());
  let pool = Pool.create ~jobs:(Pool.max_jobs () + 1000) () in
  let reported = Pool.jobs pool in
  Pool.shutdown pool;
  check Alcotest.int "absurd jobs clamped" (Pool.max_jobs ()) reported

let test_domain_rng_is_per_domain_scratch () =
  let r = Pool.domain_rng () in
  ignore (Ba_util.Rng.int r 1000);
  check Alcotest.bool "same stream within a domain" true (r == Pool.domain_rng ())

let test_s1_sweep_jobs_invariant () =
  let a = E.s1_scaling ~jobs:1 ~quick:true () in
  let b = E.s1_scaling ~jobs:4 ~quick:true () in
  check Alcotest.(list (list string)) "S1 rows identical at jobs 1 vs 4" a.E.rows b.E.rows;
  check Alcotest.(list string) "S1 headers identical" a.E.headers b.E.headers

let test_t2_grid_jobs_invariant () =
  let a = E.t2_verification ~jobs:1 ~quick:true () in
  let b = E.t2_verification ~jobs:4 ~quick:true () in
  check Alcotest.(list (list string)) "T2 rows identical at jobs 1 vs 4" a.E.rows b.E.rows

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "order preserved under skew" `Quick test_map_preserves_order;
          Alcotest.test_case "exceptions propagate in order" `Quick test_exception_propagates;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse_across_batches;
          Alcotest.test_case "invalid jobs rejected" `Quick test_invalid_jobs_rejected;
          Alcotest.test_case "map_chunks matches List.map" `Quick
            test_map_chunks_matches_list_map;
          Alcotest.test_case "map_chunks exception order" `Quick
            test_map_chunks_exception_order;
          Alcotest.test_case "jobs=1 spawns no domain" `Quick test_jobs1_spawns_no_domain;
          Alcotest.test_case "absurd jobs clamped" `Quick test_jobs_clamped_at_max;
          Alcotest.test_case "domain rng is per-domain scratch" `Quick
            test_domain_rng_is_per_domain_scratch;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "chaos campaign jobs-invariant" `Quick
            test_chaos_campaign_jobs_invariant;
          Alcotest.test_case "S1 sweep jobs-invariant" `Quick test_s1_sweep_jobs_invariant;
          Alcotest.test_case "T2 grid jobs-invariant" `Quick test_t2_grid_jobs_invariant;
        ] );
    ]
